#include "common/event_log.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <set>
#include <sstream>

#include <unistd.h>

#include "common/fault_injection.h"
#include "common/file_util.h"
#include "common/metrics.h"
#include "svc/sweep_dir.h"

namespace treevqa {

namespace {

struct EventMetrics
{
    Counter &emitted;
    Counter &flushes;
    Counter &flushFailures;
    Counter &droppedLines;
};

EventMetrics &
eventMetrics()
{
    MetricsRegistry &reg = MetricsRegistry::instance();
    static EventMetrics m{reg.counter("event.emitted"),
                          reg.counter("event.flushes"),
                          reg.counter("event.flush_failures"),
                          reg.counter("event.dropped_lines")};
    return m;
}

/**
 * Quarantine one corrupt journal line under
 * `<events>/quarantine/<journal>`, wrapped in a provenance envelope.
 * Best effort, and once per (journal, line, content) per process —
 * the exact discipline of quarantineStoreLine, re-implemented here so
 * the common layer does not reach up into svc/result_store.
 */
void
quarantineEventLine(const std::string &journalPath,
                    std::size_t lineNumber, const std::string &line,
                    const std::string &reason)
{
    static std::mutex mutex;
    static std::set<std::string> seen;
    const std::string key = journalPath + "#"
        + std::to_string(lineNumber) + "#" + crc32Hex(line);
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (!seen.insert(key).second)
            return;
    }
    try {
        namespace fs = std::filesystem;
        const fs::path journal(journalPath);
        const fs::path dir = journal.parent_path() / "quarantine";
        std::error_code ec;
        fs::create_directories(dir, ec);
        JsonValue envelope = JsonValue::object();
        envelope.set("journal", JsonValue(journal.filename().string()));
        envelope.set("line",
                     JsonValue(static_cast<std::int64_t>(lineNumber)));
        envelope.set("reason", JsonValue(reason));
        envelope.set("content", JsonValue(line));
        appendTextDurable((dir / journal.filename()).string(),
                          envelope.dump() + "\n");
        std::fprintf(stderr,
                     "treevqa: quarantined corrupt event line %s:%zu "
                     "(%s)\n",
                     journalPath.c_str(), lineNumber, reason.c_str());
    } catch (const std::exception &) {
        // A quarantine that cannot be written must not turn a
        // tolerated corruption into a crash.
    }
}

} // namespace

// ------------------------------------------------------ hybrid clock

bool
hlcLess(const Hlc &a, const Hlc &b)
{
    if (a.wallMs != b.wallMs)
        return a.wallMs < b.wallMs;
    if (a.counter != b.counter)
        return a.counter < b.counter;
    return a.origin < b.origin;
}

std::string
hlcKey(const Hlc &hlc)
{
    return std::to_string(hlc.wallMs) + "."
        + std::to_string(hlc.counter) + "@" + hlc.origin;
}

bool
parseHlcKey(const std::string &text, Hlc &out)
{
    if (text.empty())
        return false;
    Hlc parsed;
    std::string head = text;
    const std::size_t at = text.find('@');
    if (at != std::string::npos) {
        parsed.origin = text.substr(at + 1);
        head = text.substr(0, at);
    }
    std::string wall = head;
    const std::size_t dot = head.find('.');
    if (dot != std::string::npos) {
        wall = head.substr(0, dot);
        const std::string ctr = head.substr(dot + 1);
        if (ctr.empty()
            || ctr.find_first_not_of("0123456789") != std::string::npos)
            return false;
        parsed.counter = std::stoll(ctr);
    }
    if (wall.empty()
        || wall.find_first_not_of("0123456789") != std::string::npos)
        return false;
    parsed.wallMs = std::stoll(wall);
    out = parsed;
    return true;
}

JsonValue
hlcToJson(const Hlc &hlc)
{
    JsonValue out = JsonValue::object();
    out.set("wall", JsonValue(hlc.wallMs));
    out.set("ctr", JsonValue(hlc.counter));
    out.set("origin", JsonValue(hlc.origin));
    return out;
}

Hlc
hlcFromJson(const JsonValue &json)
{
    Hlc hlc;
    hlc.wallMs = json.at("wall").asInt();
    hlc.counter = json.at("ctr").asInt();
    hlc.origin = json.at("origin").asString();
    return hlc;
}

HlcClock::HlcClock(std::string origin) : origin_(std::move(origin))
{
    if (origin_.empty())
        origin_ = sanitizeFileToken(localWorkerId());
}

HlcClock &
HlcClock::instance()
{
    static HlcClock clock;
    return clock;
}

void
HlcClock::setOrigin(const std::string &origin)
{
    std::lock_guard<std::mutex> lock(mutex_);
    origin_ = origin;
}

std::string
HlcClock::origin() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return origin_;
}

Hlc
HlcClock::tick()
{
    return tick(unixTimeMs());
}

Hlc
HlcClock::tick(std::int64_t physMs)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (physMs > wallMs_) {
        wallMs_ = physMs;
        counter_ = 0;
    } else {
        // Wall stalled (or ran backwards — skew, NTP step): the
        // counter keeps stamps strictly increasing regardless.
        ++counter_;
    }
    return Hlc{wallMs_, counter_, origin_};
}

Hlc
HlcClock::observe(const Hlc &remote)
{
    return observe(remote, unixTimeMs());
}

Hlc
HlcClock::observe(const Hlc &remote, std::int64_t physMs)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const std::int64_t merged =
        std::max({physMs, wallMs_, remote.wallMs});
    if (merged == wallMs_ && merged == remote.wallMs)
        counter_ = std::max(counter_, remote.counter) + 1;
    else if (merged == wallMs_)
        ++counter_;
    else if (merged == remote.wallMs)
        counter_ = remote.counter + 1;
    else
        counter_ = 0;
    wallMs_ = merged;
    return Hlc{wallMs_, counter_, origin_};
}

Hlc
HlcClock::last() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return Hlc{wallMs_, std::max<std::int64_t>(counter_, 0), origin_};
}

// ------------------------------------------------------------ events

JsonValue
eventToJson(const SweepEvent &event)
{
    JsonValue out = JsonValue::object();
    out.set("hlc", hlcToJson(event.hlc));
    out.set("type", JsonValue(event.type));
    out.set("worker", JsonValue(event.worker));
    out.set("job", JsonValue(event.job));
    out.set("detail", event.detail.isObject() ? event.detail
                                              : JsonValue::object());
    return out;
}

bool
decodeEventLine(const std::string &line, SweepEvent &event,
                std::string *reason)
{
    try {
        JsonValue parsed = JsonValue::parse(line);
        if (!parsed.isObject())
            throw std::runtime_error("not an object");
        if (!parsed.contains("crc"))
            throw std::runtime_error("missing crc");
        const std::string expected = parsed.at("crc").asString();
        parsed.erase("crc");
        if (crc32Hex(parsed.dump()) != expected)
            throw std::runtime_error("crc mismatch");
        SweepEvent decoded;
        decoded.hlc = hlcFromJson(parsed.at("hlc"));
        decoded.type = parsed.at("type").asString();
        decoded.worker = parsed.at("worker").asString();
        decoded.job = parsed.at("job").asString();
        decoded.detail = parsed.at("detail");
        event = std::move(decoded);
        return true;
    } catch (const std::exception &e) {
        if (reason)
            *reason = e.what();
        return false;
    }
}

// ------------------------------------------------------------ writer

EventLog &
EventLog::instance()
{
    static EventLog log;
    return log;
}

void
EventLog::open(const std::string &sweepDir, const std::string &id)
{
    const std::string workerId = sanitizeFileToken(id);
    const std::string origin =
        workerId + "-p" + std::to_string(::getpid());
    const std::string path = sweepEventPath(sweepDir, origin);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (path_ == path)
            return;
        if (!buffer_.empty())
            flushLocked(); // retarget: the old journal keeps its tail
        path_ = path;
        workerId_ = workerId;
        origin_ = origin;
    }
    std::error_code ec;
    std::filesystem::create_directories(sweepEventDir(sweepDir), ec);
    // Claim/health stamps must carry the same identity as the
    // journal, or the handoff ordering would be unattributable.
    HlcClock::instance().setOrigin(origin);
}

void
EventLog::close()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!buffer_.empty())
        flushLocked();
    path_.clear();
    workerId_.clear();
    origin_.clear();
    buffer_.clear();
    bufferedLines_ = 0;
}

bool
EventLog::enabled() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return !path_.empty();
}

Hlc
EventLog::emit(const std::string &type, const std::string &job,
               JsonValue detail)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (path_.empty())
        return Hlc{};
    SweepEvent event;
    event.hlc = HlcClock::instance().tick();
    event.hlc.origin = origin_;
    event.type = type;
    event.worker = workerId_;
    event.job = job;
    event.detail = std::move(detail);

    JsonValue line = eventToJson(event);
    const std::string body = line.dump();
    line.set("crc", JsonValue(crc32Hex(body)));
    buffer_ += line.dump();
    buffer_ += '\n';
    ++bufferedLines_;
    eventMetrics().emitted.inc();
    if (bufferedLines_ >= kAutoFlushLines)
        flushLocked();
    return event.hlc;
}

bool
EventLog::flush()
{
    std::lock_guard<std::mutex> lock(mutex_);
    return flushLocked();
}

bool
EventLog::flushLocked()
{
    if (path_.empty() || buffer_.empty())
        return true;
    std::string batch;
    batch.swap(buffer_);
    const std::size_t lines = bufferedLines_;
    bufferedLines_ = 0;
    try {
        if (const FaultHit hit = FAULT_POINT("event.append")) {
            if (hit.action == FaultAction::FailErrno) {
                // Fail closed: the journal is observability — losing
                // a batch must never become a protocol failure.
                eventMetrics().flushFailures.inc();
                eventMetrics().droppedLines.inc(lines);
                return false;
            }
            if (hit.action == FaultAction::TornWrite) {
                appendTextDurable(
                    path_, batch.substr(0, hit.tornPrefix(
                                               batch.size())));
                eventMetrics().flushes.inc();
                return true; // writer believes it succeeded
            }
        }
        appendTextDurable(path_, batch);
        eventMetrics().flushes.inc();
        return true;
    } catch (const std::exception &) {
        eventMetrics().flushFailures.inc();
        eventMetrics().droppedLines.inc(lines);
        return false;
    }
}

std::size_t
EventLog::buffered() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return bufferedLines_;
}

// ------------------------------------------------------------ reader

std::vector<SweepEvent>
readEventJournal(const std::string &path, EventReadStats *stats)
{
    std::vector<SweepEvent> events;
    std::string text;
    if (!readTextFile(path, text))
        return events;
    if (stats)
        ++stats->files;
    std::istringstream lines(text);
    std::string line;
    std::size_t lineNumber = 0;
    while (std::getline(lines, line)) {
        ++lineNumber;
        if (line.empty())
            continue;
        SweepEvent event;
        std::string reason;
        if (decodeEventLine(line, event, &reason)) {
            events.push_back(std::move(event));
            if (stats)
                ++stats->events;
        } else {
            quarantineEventLine(path, lineNumber, line, reason);
            if (stats)
                ++stats->corruptLines;
        }
    }
    return events;
}

std::vector<SweepEvent>
readSweepEvents(const std::string &sweepDir, EventReadStats *stats)
{
    std::vector<std::string> files;
    std::error_code ec;
    for (const auto &entry : std::filesystem::directory_iterator(
             sweepEventDir(sweepDir), ec)) {
        if (entry.is_regular_file()
            && entry.path().extension() == ".jsonl")
            files.push_back(entry.path().string());
    }
    std::sort(files.begin(), files.end());
    std::vector<SweepEvent> events;
    for (const std::string &path : files) {
        std::vector<SweepEvent> journal =
            readEventJournal(path, stats);
        events.insert(events.end(),
                      std::make_move_iterator(journal.begin()),
                      std::make_move_iterator(journal.end()));
    }
    sortEventsCausal(events);
    return events;
}

void
sortEventsCausal(std::vector<SweepEvent> &events)
{
    std::sort(events.begin(), events.end(),
              [](const SweepEvent &a, const SweepEvent &b) {
                  if (hlcLess(a.hlc, b.hlc))
                      return true;
                  if (hlcLess(b.hlc, a.hlc))
                      return false;
                  // Identical stamps can only come from pre-HLC or
                  // hand-built events; keep the order a pure function
                  // of content anyway.
                  if (a.type != b.type)
                      return a.type < b.type;
                  if (a.worker != b.worker)
                      return a.worker < b.worker;
                  if (a.job != b.job)
                      return a.job < b.job;
                  return a.detail.dump() < b.detail.dump();
              });
}

std::string
formatTimeline(std::vector<SweepEvent> events,
               const std::string &fingerprint)
{
    events.erase(std::remove_if(events.begin(), events.end(),
                                [&](const SweepEvent &e) {
                                    return e.job != fingerprint;
                                }),
                 events.end());
    sortEventsCausal(events);
    std::string out = "timeline for job " + fingerprint + ": "
        + std::to_string(events.size()) + " event(s)\n";
    for (const SweepEvent &event : events) {
        out += std::to_string(event.hlc.wallMs);
        out += '.';
        out += std::to_string(event.hlc.counter);
        out += ' ';
        out += event.hlc.origin;
        out += ' ';
        out += event.type;
        out += ' ';
        out += event.detail.dump();
        out += '\n';
    }
    return out;
}

} // namespace treevqa

#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <filesystem>

#include <unistd.h>

#include "common/fault_injection.h"
#include "common/file_util.h"
#include "svc/sweep_dir.h"

namespace treevqa {

namespace {

/** Lower bound of histogram bucket i (see HistogramSnapshot). */
double
bucketLow(std::size_t i)
{
    if (i == 0)
        return 0.0;
    return std::ldexp(1.0, static_cast<int>(i) - 1);
}

/** Deterministic representative value for bucket i: 0 for the zero
 * bucket, otherwise the midpoint of [2^(i-1), 2^i). */
double
bucketMid(std::size_t i)
{
    if (i == 0)
        return 0.0;
    return 1.5 * bucketLow(i);
}

} // namespace

std::size_t
Counter::shardIndex()
{
    // One shard per thread, assigned round-robin at first use. A
    // fleet of pool threads lands on distinct cachelines; collisions
    // beyond kShards threads only cost contention, never correctness.
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t shard =
        next.fetch_add(1, std::memory_order_relaxed) % kShards;
    return shard;
}

HistogramSnapshot
Histogram::snapshot() const
{
    HistogramSnapshot out;
    for (std::size_t i = 0; i < HistogramSnapshot::kBuckets; ++i) {
        out.buckets[i] =
            buckets_[i].load(std::memory_order_relaxed);
        out.count += out.buckets[i];
    }
    out.sum = sum_.load(std::memory_order_relaxed);
    return out;
}

void
HistogramSnapshot::merge(const HistogramSnapshot &other)
{
    count += other.count;
    sum += other.sum;
    for (std::size_t i = 0; i < kBuckets; ++i)
        buckets[i] += other.buckets[i];
}

double
HistogramSnapshot::quantile(double q) const
{
    if (count == 0)
        return 0.0;
    q = std::min(1.0, std::max(0.0, q));
    // Rank of the target observation, 1-based; integer arithmetic so
    // the bucket pick is exact and platform-independent.
    const std::uint64_t rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(q * static_cast<double>(count))));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
        seen += buckets[i];
        if (seen >= rank)
            return bucketMid(i);
    }
    return bucketMid(kBuckets - 1);
}

void
MetricsSnapshot::merge(const MetricsSnapshot &other)
{
    for (const auto &[name, value] : other.counters)
        counters[name] += value;
    for (const auto &[name, value] : other.gauges) {
        auto it = gauges.find(name);
        if (it == gauges.end())
            gauges[name] = value;
        else
            it->second = std::max(it->second, value);
    }
    for (const auto &[name, hist] : other.histograms)
        histograms[name].merge(hist);
}

JsonValue
MetricsSnapshot::toJson() const
{
    JsonValue out = JsonValue::object();
    JsonValue cs = JsonValue::object();
    for (const auto &[name, value] : counters)
        cs.set(name, JsonValue(value));
    out.set("counters", std::move(cs));
    JsonValue gs = JsonValue::object();
    for (const auto &[name, value] : gauges)
        gs.set(name, JsonValue(value));
    out.set("gauges", std::move(gs));
    JsonValue hs = JsonValue::object();
    for (const auto &[name, hist] : histograms) {
        JsonValue h = JsonValue::object();
        h.set("count", JsonValue(hist.count));
        h.set("sum", JsonValue(hist.sum));
        // Sparse encoding: only non-zero buckets, as [index, count]
        // pairs, so idle histograms stay one line.
        JsonValue buckets = JsonValue::array();
        for (std::size_t i = 0; i < HistogramSnapshot::kBuckets;
             ++i) {
            if (hist.buckets[i] == 0)
                continue;
            JsonValue pair = JsonValue::array();
            pair.push_back(JsonValue(static_cast<std::uint64_t>(i)));
            pair.push_back(JsonValue(hist.buckets[i]));
            buckets.push_back(std::move(pair));
        }
        h.set("buckets", std::move(buckets));
        hs.set(name, std::move(h));
    }
    out.set("histograms", std::move(hs));
    return out;
}

MetricsSnapshot
MetricsSnapshot::fromJson(const JsonValue &v)
{
    MetricsSnapshot out;
    jsonMaybe(v, "counters", [&](const JsonValue &cs) {
        for (const auto &[name, value] : cs.asObject())
            out.counters[name] = value.asUint();
    });
    jsonMaybe(v, "gauges", [&](const JsonValue &gs) {
        for (const auto &[name, value] : gs.asObject())
            out.gauges[name] = value.asInt();
    });
    jsonMaybe(v, "histograms", [&](const JsonValue &hs) {
        for (const auto &[name, h] : hs.asObject()) {
            HistogramSnapshot hist;
            hist.count = h.at("count").asUint();
            hist.sum = h.at("sum").asUint();
            for (const JsonValue &pair :
                 h.at("buckets").asArray()) {
                const std::size_t i = static_cast<std::size_t>(
                    pair.asArray().at(0).asUint());
                if (i < HistogramSnapshot::kBuckets)
                    hist.buckets[i] =
                        pair.asArray().at(1).asUint();
            }
            out.histograms[name] = hist;
        }
    });
    return out;
}

MetricsRegistry &
MetricsRegistry::instance()
{
    static MetricsRegistry *registry = new MetricsRegistry();
    return *registry;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    MetricsSnapshot out;
    for (const auto &[name, counter] : counters_)
        out.counters[name] = counter->total();
    for (const auto &[name, gauge] : gauges_)
        out.gauges[name] = gauge->value();
    for (const auto &[name, hist] : histograms_)
        out.histograms[name] = hist->snapshot();
    return out;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    // Zero contents in place: cached references must stay valid.
    for (auto &[name, counter] : counters_)
        counter->reset();
    for (auto &[name, gauge] : gauges_)
        gauge->set(0);
    for (auto &[name, hist] : histograms_)
        hist->reset();
}

bool
writeMetricsSnapshot(const std::string &sweepDir,
                     const std::string &id,
                     const std::string &fileToken)
{
    try {
        const FaultHit fault = FAULT_POINT("metrics.write");
        if (fault.err != 0)
            return false;
        std::error_code ec;
        std::filesystem::create_directories(sweepMetricsDir(sweepDir),
                                            ec);
        JsonValue dump = JsonValue::object();
        dump.set("schemaVersion", JsonValue(std::int64_t{1}));
        dump.set("id", JsonValue(id));
        dump.set("pid", JsonValue(static_cast<std::int64_t>(
                            ::getpid())));
        // Wall stamp of the dump: the aggregate's asOfMs is the max
        // over these, which is what `--metrics --since` divides
        // counter deltas by to get per-second rates.
        dump.set("writtenMs", JsonValue(unixTimeMs()));
        JsonValue snap =
            MetricsRegistry::instance().snapshot().toJson();
        for (auto &[key, value] : snap.asObject())
            dump.set(key, std::move(value));
        writeTextFileAtomic(sweepMetricsPath(sweepDir, fileToken),
                            dump.dump(2) + "\n");
        return true;
    } catch (const std::exception &) {
        return false;
    }
}

std::vector<std::pair<std::string, JsonValue>>
readMetricsDumps(const std::string &sweepDir)
{
    std::vector<std::pair<std::string, JsonValue>> dumps;
    std::vector<std::string> files;
    std::error_code ec;
    for (const auto &entry : std::filesystem::directory_iterator(
             sweepMetricsDir(sweepDir), ec)) {
        if (entry.is_regular_file()
            && entry.path().extension() == ".json")
            files.push_back(entry.path().string());
    }
    std::sort(files.begin(), files.end());
    for (const std::string &path : files) {
        std::string text;
        if (!readTextFile(path, text))
            continue;
        try {
            dumps.emplace_back(
                std::filesystem::path(path).stem().string(),
                JsonValue::parse(text));
        } catch (const std::exception &) {
            // A torn or in-flight dump is skipped, not fatal.
        }
    }
    return dumps;
}

JsonValue
aggregateMetricsJson(
    const std::vector<std::pair<std::string, JsonValue>> &dumps)
{
    MetricsSnapshot merged;
    std::vector<std::string> sources;
    std::int64_t as_of_ms = 0;
    for (const auto &[token, dump] : dumps) {
        try {
            merged.merge(MetricsSnapshot::fromJson(dump));
            sources.push_back(token);
            jsonMaybe(dump, "writtenMs", [&](const JsonValue &v) {
                as_of_ms = std::max(as_of_ms, v.asInt());
            });
        } catch (const std::exception &) {
            // Skip malformed dumps; the view stays advisory.
        }
    }
    std::sort(sources.begin(), sources.end());

    JsonValue out = JsonValue::object();
    out.set("schemaVersion", JsonValue(std::int64_t{1}));
    // Newest input dump's wall stamp (still a pure function of the
    // dumps); 0 when every dump predates writtenMs stamping.
    out.set("asOfMs", JsonValue(as_of_ms));
    out.set("processes", JsonValue(static_cast<std::uint64_t>(
                             sources.size())));
    JsonValue src = JsonValue::array();
    for (const std::string &token : sources)
        src.push_back(JsonValue(token));
    out.set("sources", std::move(src));

    JsonValue cs = JsonValue::object();
    for (const auto &[name, value] : merged.counters)
        cs.set(name, JsonValue(value));
    out.set("counters", std::move(cs));
    JsonValue gs = JsonValue::object();
    for (const auto &[name, value] : merged.gauges)
        gs.set(name, JsonValue(value));
    out.set("gauges", std::move(gs));

    // Histograms surface as per-phase latency rows: counts plus
    // total/mean/percentile milliseconds derived from the merged
    // log2 buckets (midpoint estimate, deterministic).
    JsonValue phases = JsonValue::object();
    for (const auto &[name, hist] : merged.histograms) {
        JsonValue row = JsonValue::object();
        row.set("count", JsonValue(hist.count));
        const double totalMs =
            static_cast<double>(hist.sum) / 1e6;
        row.set("totalMs", JsonValue(totalMs));
        row.set("meanMs",
                JsonValue(hist.count == 0
                              ? 0.0
                              : totalMs
                                  / static_cast<double>(hist.count)));
        row.set("p50Ms", JsonValue(hist.quantile(0.50) / 1e6));
        row.set("p90Ms", JsonValue(hist.quantile(0.90) / 1e6));
        row.set("p99Ms", JsonValue(hist.quantile(0.99) / 1e6));
        phases.set(name, std::move(row));
    }
    out.set("phases", std::move(phases));
    return out;
}

} // namespace treevqa

#include "common/fault_injection.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "common/file_util.h"
#include "common/json.h"
#include "common/rng.h"

namespace treevqa {

std::size_t
FaultHit::tornPrefix(std::size_t size) const
{
    const double keep = std::clamp(keepFraction, 0.0, 1.0);
    std::size_t prefix =
        static_cast<std::size_t>(static_cast<double>(size) * keep);
    // Never tear into nothing-at-all unless asked: keepFraction 0
    // means an empty file, anything else keeps at least one byte so
    // "torn" is distinguishable from "never written".
    if (prefix == 0 && keep > 0.0 && size > 0)
        prefix = 1;
    return std::min(prefix, size);
}

/** One armed plan entry plus its mutable trigger state. */
struct FaultInjection::Entry
{
    std::string site;
    FaultAction action = FaultAction::None;
    int err = 0;
    std::int64_t delayMs = 0;
    double keepFraction = 0.5;
    /** hit-count trigger (1-based); 0 = probability trigger. */
    std::uint64_t hit = 0;
    double probability = 0.0;
    /** Max fires (0 = unlimited). */
    std::uint64_t times = 1;

    std::uint64_t fired = 0;
    /** Dedicated Bernoulli stream (probability triggers). */
    Rng rng{0};
};

std::atomic<bool> &
FaultInjection::armedFlag()
{
    static std::atomic<bool> flag{false};
    return flag;
}

FaultInjection &
FaultInjection::instance()
{
    static FaultInjection registry;
    return registry;
}

int
faultErrnoFromName(const std::string &name)
{
    static const std::map<std::string, int> known = {
        {"EINTR", EINTR},   {"EAGAIN", EAGAIN}, {"EBUSY", EBUSY},
        {"EIO", EIO},       {"ENOSPC", ENOSPC}, {"EACCES", EACCES},
        {"ENOENT", ENOENT}, {"EEXIST", EEXIST}, {"EMFILE", EMFILE},
        {"ENFILE", ENFILE}, {"EROFS", EROFS},   {"ESTALE", ESTALE},
    };
    const auto it = known.find(name);
    if (it != known.end())
        return it->second;
    char *end = nullptr;
    const long value = std::strtol(name.c_str(), &end, 10);
    if (end != name.c_str() && *end == '\0' && value > 0)
        return static_cast<int>(value);
    throw std::invalid_argument("fault plan: unknown errno \"" + name
                                + "\"");
}

namespace {

FaultAction
actionFromName(const std::string &name)
{
    if (name == "fail-errno")
        return FaultAction::FailErrno;
    if (name == "torn-write")
        return FaultAction::TornWrite;
    if (name == "delay-ms")
        return FaultAction::DelayMs;
    if (name == "crash")
        return FaultAction::Crash;
    throw std::invalid_argument("fault plan: unknown action \"" + name
                                + "\" (expected \"fail-errno\", "
                                  "\"torn-write\", \"delay-ms\" or "
                                  "\"crash\")");
}

/** SplitMix64 step: derives each entry's private trigger stream from
 * (plan seed, entry index) so adding an entry never shifts another
 * entry's schedule. */
std::uint64_t
deriveEntrySeed(std::uint64_t seed, std::uint64_t index)
{
    std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * (index + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace

void
FaultInjection::arm(const std::string &planJson)
{
    const JsonValue plan = JsonValue::parse(planJson);
    jsonRejectUnknownKeys(plan, {"seed", "faults"}, "fault plan");
    std::uint64_t seed = 0;
    jsonMaybe(plan, "seed",
              [&](const JsonValue &v) { seed = v.asUint(); });

    std::vector<Entry> entries;
    jsonMaybe(plan, "faults", [&](const JsonValue &faults) {
        for (const JsonValue &spec : faults.asArray()) {
            jsonRejectUnknownKeys(spec,
                                  {"site", "action", "errno", "ms",
                                   "keepFraction", "hit",
                                   "probability", "times"},
                                  "fault plan entry");
            Entry entry;
            entry.site = spec.at("site").asString();
            entry.action =
                actionFromName(spec.at("action").asString());
            jsonMaybe(spec, "errno", [&](const JsonValue &v) {
                entry.err = v.isString()
                    ? faultErrnoFromName(v.asString())
                    : static_cast<int>(v.asInt());
            });
            jsonMaybe(spec, "ms", [&](const JsonValue &v) {
                entry.delayMs = v.asInt();
            });
            jsonMaybe(spec, "keepFraction", [&](const JsonValue &v) {
                entry.keepFraction = v.asDouble();
            });
            jsonMaybe(spec, "hit", [&](const JsonValue &v) {
                entry.hit = v.asUint();
            });
            jsonMaybe(spec, "probability", [&](const JsonValue &v) {
                entry.probability = v.asDouble();
            });
            jsonMaybe(spec, "times", [&](const JsonValue &v) {
                entry.times = v.asUint();
            });
            if (entry.site.empty())
                throw std::invalid_argument(
                    "fault plan: entry with empty site");
            if (entry.action == FaultAction::FailErrno
                && entry.err == 0)
                throw std::invalid_argument(
                    "fault plan: fail-errno entry for \"" + entry.site
                    + "\" needs an \"errno\"");
            if (entry.hit == 0 && entry.probability <= 0.0)
                throw std::invalid_argument(
                    "fault plan: entry for \"" + entry.site
                    + "\" needs a \"hit\" count or a positive "
                      "\"probability\"");
            if (entry.hit != 0 && entry.probability > 0.0)
                throw std::invalid_argument(
                    "fault plan: entry for \"" + entry.site
                    + "\" has both \"hit\" and \"probability\"");
            entry.rng = Rng(deriveEntrySeed(seed, entries.size()));
            entries.push_back(std::move(entry));
        }
    });

    std::lock_guard<std::mutex> lock(mutex_);
    seed_ = seed;
    entries_ = std::move(entries);
    counters_.clear();
    // An empty fault list still arms the registry: sites count their
    // evaluations, which is how the chaos harness discovers the site
    // coverage of a reference run.
    armedFlag().store(true, std::memory_order_relaxed);
}

void
FaultInjection::disarm()
{
    std::lock_guard<std::mutex> lock(mutex_);
    armedFlag().store(false, std::memory_order_relaxed);
    entries_.clear();
    counters_.clear();
    seed_ = 0;
}

FaultHit
FaultInjection::evaluate(const char *site)
{
    FaultHit hit;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        FaultSiteCounters &count = counters_[site];
        ++count.evaluations;
        for (Entry &entry : entries_) {
            if (entry.site != site)
                continue;
            if (entry.times != 0 && entry.fired >= entry.times)
                continue;
            bool fires = false;
            if (entry.hit != 0) {
                // From the Nth evaluation onward; "times" caps the
                // total (default 1 = exactly the Nth).
                fires = count.evaluations >= entry.hit;
            } else {
                // Advance the entry's private stream on *every*
                // evaluation of its site, so the schedule is a pure
                // function of (plan, hit index) — not of which earlier
                // entries happened to fire.
                fires = entry.rng.uniform() < entry.probability;
            }
            if (!fires)
                continue;
            ++entry.fired;
            ++count.fires;
            hit.action = entry.action;
            hit.err = entry.err;
            hit.delayMs = entry.delayMs;
            hit.keepFraction = entry.keepFraction;
            break; // first matching entry wins this evaluation
        }
    }

    switch (hit.action) {
      case FaultAction::DelayMs:
        std::this_thread::sleep_for(
            std::chrono::milliseconds(hit.delayMs));
        break;
      case FaultAction::Crash:
        std::fprintf(stderr,
                     "treevqa: fault injection: crash at site \"%s\"\n",
                     site);
        std::fflush(nullptr);
        ::raise(SIGKILL);
        std::_Exit(137); // unreachable; SIGKILL cannot be handled
      default:
        break;
    }
    return hit;
}

std::map<std::string, FaultSiteCounters>
FaultInjection::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

std::uint64_t
FaultInjection::totalFires() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t total = 0;
    for (const auto &[site, count] : counters_)
        total += count.fires;
    return total;
}

/**
 * Arm from TREEVQA_FAULT_PLAN at process start (static init), before
 * any fault point can be evaluated. The value is inline JSON when it
 * starts with '{', otherwise a path to a plan file. A malformed plan
 * kills the process: a chaos drill that silently ran fault-free would
 * report a vacuous pass.
 */
struct FaultInjectionEnvBootstrap
{
    FaultInjectionEnvBootstrap()
    {
        const char *value = std::getenv("TREEVQA_FAULT_PLAN");
        if (value == nullptr || *value == '\0')
            return;
        try {
            std::string plan = value;
            if (plan[0] != '{') {
                std::string text;
                if (!readTextFile(plan, text))
                    throw std::runtime_error(
                        "cannot read fault plan file " + plan);
                plan = std::move(text);
            }
            FaultInjection::instance().arm(plan);
        } catch (const std::exception &e) {
            std::fprintf(stderr,
                         "treevqa: TREEVQA_FAULT_PLAN rejected: %s\n",
                         e.what());
            std::_Exit(2);
        }
    }
};

static FaultInjectionEnvBootstrap g_faultInjectionEnvBootstrap;

} // namespace treevqa

#include "common/thread_pool.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace treevqa {

namespace {

thread_local bool t_onWorker = false;

/** Hard cap on TREEVQA_NUM_THREADS: a pool this wide never helps and
 * an absurd request ("1e9", a typo'd pid) would exhaust the OS. */
constexpr long kMaxEnvThreads = 512;

} // namespace

std::size_t
defaultThreadCount()
{
    const unsigned hw = std::thread::hardware_concurrency();
    const std::size_t fallback = hw > 0 ? hw : 1;

    const char *env = std::getenv("TREEVQA_NUM_THREADS");
    if (env == nullptr || *env == '\0')
        return fallback;

    // Strict parse: an integer, optionally surrounded by whitespace,
    // and nothing else. Anything malformed ("abc", "4x", "", "2.5")
    // falls back to the hardware default with a warning instead of the
    // old silent strtol prefix behavior.
    char *end = nullptr;
    errno = 0;
    const long n = std::strtol(env, &end, 10);
    const bool overflow = errno == ERANGE;
    while (end != nullptr && *end != '\0'
           && std::isspace(static_cast<unsigned char>(*end)))
        ++end;
    if (end == env || (end != nullptr && *end != '\0')) {
        std::fprintf(stderr,
                     "treevqa: ignoring non-numeric TREEVQA_NUM_THREADS"
                     "=\"%s\" (using %zu)\n",
                     env, fallback);
        return fallback;
    }
    if (overflow || n > kMaxEnvThreads) {
        std::fprintf(stderr,
                     "treevqa: clamping TREEVQA_NUM_THREADS=\"%s\" to "
                     "%ld\n",
                     env, kMaxEnvThreads);
        return static_cast<std::size_t>(kMaxEnvThreads);
    }
    if (n <= 0) {
        std::fprintf(stderr,
                     "treevqa: ignoring non-positive TREEVQA_NUM_THREADS"
                     "=\"%s\" (using %zu)\n",
                     env, fallback);
        return fallback;
    }
    return static_cast<std::size_t>(n);
}

ThreadPool::ThreadPool(std::size_t threads)
{
    resize(threads);
}

ThreadPool::~ThreadPool()
{
    stopWorkers();
}

void
ThreadPool::resize(std::size_t threads)
{
    stopWorkers();
    targetThreads_ = threads > 0 ? threads : defaultThreadCount();
    startWorkers(targetThreads_ - 1);
}

void
ThreadPool::startWorkers(std::size_t workers)
{
    shutdown_ = false;
    workers_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

void
ThreadPool::stopWorkers()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    wake_.notify_all();
    for (auto &worker : workers_)
        worker.join();
    workers_.clear();
}

void
ThreadPool::workerLoop()
{
    t_onWorker = true;
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        wake_.wait(lock, [this] {
            return shutdown_ || (job_ && nextIndex_ < jobCount_);
        });
        if (shutdown_)
            return;
        while (job_ && nextIndex_ < jobCount_) {
            const std::size_t index = nextIndex_++;
            const auto *fn = job_;
            lock.unlock();
            std::exception_ptr error;
            try {
                (*fn)(index);
            } catch (...) {
                error = std::current_exception();
            }
            lock.lock();
            if (error && !firstError_)
                firstError_ = error;
            if (--pending_ == 0)
                done_.notify_all();
        }
    }
}

void
ThreadPool::run(std::size_t count,
                const std::function<void(std::size_t)> &fn)
{
    if (count == 0)
        return;
    // Inline paths: single lane, trivial batch, or nested call from a
    // pool task (running inline preserves progress and bounds the
    // total concurrency at the pool size).
    if (targetThreads_ <= 1 || count < 2 || workers_.empty()
        || t_onWorker) {
        for (std::size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }

    std::lock_guard<std::mutex> runLock(runMutex_);
    std::unique_lock<std::mutex> lock(mutex_);
    job_ = &fn;
    jobCount_ = count;
    nextIndex_ = 0;
    pending_ = count;
    firstError_ = nullptr;
    lock.unlock();
    wake_.notify_all();

    // The caller participates until the index space is drained. Its
    // lane counts as pool context while the job is live, so a nested
    // run() issued from inside fn executes inline instead of
    // re-entering the (non-recursive) run mutex. Exceptions from fn
    // are captured (first wins) and rethrown only after every claimed
    // index finished, so job_/pending_ stay consistent.
    t_onWorker = true;
    lock.lock();
    while (job_ && nextIndex_ < jobCount_) {
        const std::size_t index = nextIndex_++;
        lock.unlock();
        std::exception_ptr error;
        try {
            fn(index);
        } catch (...) {
            error = std::current_exception();
        }
        lock.lock();
        if (error && !firstError_)
            firstError_ = error;
        if (--pending_ == 0)
            done_.notify_all();
    }
    done_.wait(lock, [this] { return pending_ == 0; });
    job_ = nullptr;
    jobCount_ = 0;
    const std::exception_ptr error = firstError_;
    firstError_ = nullptr;
    lock.unlock();
    t_onWorker = false;
    if (error)
        std::rethrow_exception(error);
}

bool
ThreadPool::onWorkerThread()
{
    return t_onWorker;
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool(defaultThreadCount());
    return pool;
}

} // namespace treevqa

/**
 * @file
 * Pauli propagation: Heisenberg-picture simulation with weight
 * truncation.
 *
 * The paper's large-scale benchmarks (Section 8.4: 25-site Ising and
 * 28-qubit C2H2) cannot be simulated with dense statevectors; the
 * authors use the PauliPropagation method (Rudolph et al. 2025) with
 * truncation of Pauli terms above weight 8. This module reimplements
 * that algorithm in C++:
 *
 *   - the observable O is back-propagated through the circuit,
 *     O <- G^dag O G gate by gate in reverse order;
 *   - Clifford gates (H, S, X, CX, CZ) permute Pauli strings with a
 *     sign;
 *   - Pauli rotations exp(-i theta/2 P) split anticommuting strings:
 *     Q -> cos(theta) Q + sin(theta) (i P Q);
 *   - strings above the weight cap or below the coefficient threshold
 *     are truncated, bounding the term count;
 *   - at the end, <b|O'|b> for a computational-basis state keeps only
 *     the Z-diagonal strings.
 *
 * TreeVQA-specific extension: one propagation carries a *vector* of
 * coefficients per string — one slot per task Hamiltonian plus the mixed
 * Hamiltonian — because all cluster members share the circuit and
 * parameters. This makes the per-member loss tracking of Algorithm 2
 * essentially free even at 25+ qubits.
 *
 * Parallelism: with config.shards > 1 the live-string map is split
 * into that many shards (string hash modulo shard count). Each gate
 * step scatters every shard's transformed terms into per-(source,
 * destination) outboxes in parallel over the global thread pool, then
 * gathers each destination shard by folding the outboxes in ascending
 * source order — a deterministic merge, so results are bit-identical
 * for any pool size at a fixed shard count. shards = 1 reproduces the
 * serial algorithm exactly; other shard counts reassociate the
 * floating-point accumulation and agree to ~1e-12.
 *
 * The propagator consumes the same CompiledCircuit program as the
 * statevector backend (walking its retained source gate stream) and
 * shares ownership of it, so a propagator never dangles behind the
 * circuit it was built from.
 */

#ifndef TREEVQA_PAULPROP_PAULI_PROPAGATION_H
#define TREEVQA_PAULPROP_PAULI_PROPAGATION_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "circuit/circuit.h"
#include "circuit/compiled_circuit.h"
#include "pauli/pauli_sum.h"

namespace treevqa {

/** Truncation and sharding knobs (paper default: weight cap 8). */
struct PauliPropConfig
{
    int maxWeight = 8;            ///< drop strings heavier than this
    double coefThreshold = 1e-10; ///< drop slots' max |c| below this
    std::size_t maxTerms = 1u << 20; ///< hard cap on live strings
    /** Live-map shards propagated in parallel over the thread pool
     * (values < 1 behave as 1 = serial). Results are independent of
     * the pool size for any fixed shard count. */
    int shards = 1;
};

/** Heisenberg-picture simulator bound to one compiled program. */
class PauliPropagator
{
  public:
    /** Share an already-compiled program (the hot path: the same
     * program the statevector backend executes). */
    explicit PauliPropagator(
        std::shared_ptr<const CompiledCircuit> program,
        PauliPropConfig config = {});

    /** Compile-on-construct convenience (goes through the process-wide
     * CompilationCache; safe with temporary circuits). */
    explicit PauliPropagator(const Circuit &circuit,
                             PauliPropConfig config = {});

    const PauliPropConfig &config() const { return config_; }

    /**
     * Expectations of several observables for one parameter binding.
     *
     * @param theta circuit parameters.
     * @param observables the operators; they are propagated jointly.
     * @param initial_bits computational-basis initial state.
     * @return <O_k> for each observable, in order.
     */
    std::vector<double> expectations(
        const std::vector<double> &theta,
        const std::vector<PauliSum> &observables,
        std::uint64_t initial_bits) const;

    /** Single-observable convenience wrapper. */
    double expectation(const std::vector<double> &theta,
                       const PauliSum &observable,
                       std::uint64_t initial_bits) const;

    /** Live-string count after the most recent propagation (telemetry
     * for truncation studies; atomic because probe batches may run
     * expectations() concurrently — the value then reflects whichever
     * propagation finished last). */
    std::size_t lastTermCount() const
    {
        return lastTermCount_.load(std::memory_order_relaxed);
    }

  private:
    std::shared_ptr<const CompiledCircuit> program_;
    PauliPropConfig config_;
    mutable std::atomic<std::size_t> lastTermCount_{0};
};

} // namespace treevqa

#endif // TREEVQA_PAULPROP_PAULI_PROPAGATION_H

#include "paulprop/pauli_propagation.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "common/thread_pool.h"

namespace treevqa {

namespace {

/** Coefficient slots per live string: one per observable. */
using SlotVector = std::vector<double>;
using TermMap =
    std::unordered_map<PauliString, SlotVector, PauliStringHash>;
/** Scatter payload: transformed terms bound for one destination shard,
 * in emission order. */
using Outbox = std::vector<std::pair<PauliString, SlotVector>>;

double
maxAbs(const SlotVector &v)
{
    double m = 0.0;
    for (double x : v)
        m = std::max(m, std::fabs(x));
    return m;
}

/** Single-qubit Clifford conjugations G^dag P G as (x,z,sign) maps. */
void
conjugateH(PauliString &p, int q, double &sign)
{
    // H: X <-> Z, Y -> -Y.
    const std::uint64_t bit = 1ull << q;
    const bool x = p.xMask() & bit;
    const bool z = p.zMask() & bit;
    if (x && z) {
        sign = -sign;
        return;
    }
    if (x != z) {
        p = PauliString(p.numQubits(), p.xMask() ^ bit, p.zMask() ^ bit);
    }
}

void
conjugateSdg(PauliString &p, int q, double &sign)
{
    // S^dag P S: X -> -Y, Y -> X, Z -> Z.
    const std::uint64_t bit = 1ull << q;
    const bool x = p.xMask() & bit;
    const bool z = p.zMask() & bit;
    if (x && !z) {
        p = PauliString(p.numQubits(), p.xMask(), p.zMask() | bit);
        sign = -sign;
    } else if (x && z) {
        p = PauliString(p.numQubits(), p.xMask(), p.zMask() ^ bit);
    }
}

void
conjugateS(PauliString &p, int q, double &sign)
{
    // S P S^dag: X -> Y, Y -> -X, Z -> Z.
    const std::uint64_t bit = 1ull << q;
    const bool x = p.xMask() & bit;
    const bool z = p.zMask() & bit;
    if (x && !z) {
        p = PauliString(p.numQubits(), p.xMask(), p.zMask() | bit);
    } else if (x && z) {
        p = PauliString(p.numQubits(), p.xMask(), p.zMask() ^ bit);
        sign = -sign;
    }
}

void
conjugateX(PauliString &p, int q, double &sign)
{
    // X P X: Z -> -Z, Y -> -Y.
    const std::uint64_t bit = 1ull << q;
    if (p.zMask() & bit)
        sign = -sign;
}

void
conjugateCx(PauliString &p, int control, int target, double &sign)
{
    // CX P CX: x_t ^= x_c, z_c ^= z_t; sign flips iff
    // x_c & z_t & (x_t == z_c).
    const std::uint64_t cbit = 1ull << control;
    const std::uint64_t tbit = 1ull << target;
    const bool xc = p.xMask() & cbit;
    const bool zc = p.zMask() & cbit;
    const bool xt = p.xMask() & tbit;
    const bool zt = p.zMask() & tbit;
    if (xc && zt && (xt == zc))
        sign = -sign;
    std::uint64_t xm = p.xMask();
    std::uint64_t zm = p.zMask();
    if (xc)
        xm ^= tbit;
    if (zt)
        zm ^= cbit;
    p = PauliString(p.numQubits(), xm, zm);
}

void
conjugateCz(PauliString &p, int a, int b, double &sign)
{
    // CZ P CZ: X_a -> X_a Z_b, X_b -> Z_a X_b; sign -1 iff both qubits
    // carry X-type operators (from X x X -> Y x Y-like products).
    const std::uint64_t abit = 1ull << a;
    const std::uint64_t bbit = 1ull << b;
    const bool xa = p.xMask() & abit;
    const bool xb = p.xMask() & bbit;
    const bool za = p.zMask() & abit;
    const bool zb = p.zMask() & bbit;
    std::uint64_t zm = p.zMask();
    if (xa)
        zm ^= bbit;
    if (xb)
        zm ^= abit;
    // Recanonicalization phase: -1 iff both qubits carry X-type
    // operators and their Z components differ (e.g. Y(x)X -> -X(x)Y).
    if (xa && xb && (za != zb))
        sign = -sign;
    p = PauliString(p.numQubits(), p.xMask(), zm);
}

/** The rotation generator of a parameterizable gate, or identity for
 * Cliffords. */
PauliString
rotationGenerator(const GateInstr &g, int num_qubits)
{
    PauliString p(num_qubits);
    switch (g.op) {
      case GateOp::Rx:
        p.setOp(g.q0, 'X');
        break;
      case GateOp::Ry:
        p.setOp(g.q0, 'Y');
        break;
      case GateOp::Rz:
        p.setOp(g.q0, 'Z');
        break;
      case GateOp::Rzz:
        p.setOp(g.q0, 'Z');
        p.setOp(g.q1, 'Z');
        break;
      case GateOp::Rxx:
        p.setOp(g.q0, 'X');
        p.setOp(g.q1, 'X');
        break;
      case GateOp::Ryy:
        p.setOp(g.q0, 'Y');
        p.setOp(g.q1, 'Y');
        break;
      default:
        break;
    }
    return p;
}

} // namespace

PauliPropagator::PauliPropagator(
    std::shared_ptr<const CompiledCircuit> program,
    PauliPropConfig config)
    : program_(std::move(program)), config_(config)
{
    assert(program_);
}

PauliPropagator::PauliPropagator(const Circuit &circuit,
                                 PauliPropConfig config)
    : PauliPropagator(CompilationCache::global().compile(circuit),
                      config)
{
}

std::vector<double>
PauliPropagator::expectations(const std::vector<double> &theta,
                              const std::vector<PauliSum> &observables,
                              std::uint64_t initial_bits) const
{
    assert(!observables.empty());
    const int n = program_->numQubits();
    const std::size_t slots = observables.size();
    const std::size_t num_shards = static_cast<std::size_t>(
        std::max(1, config_.shards));
    const auto shardOf = [num_shards](const PauliString &p) {
        return PauliStringHash{}(p) % num_shards;
    };

    // Seed the sharded live maps with all observables' terms.
    std::vector<TermMap> live(num_shards);
    for (std::size_t k = 0; k < slots; ++k) {
        assert(observables[k].numQubits() == n);
        for (const auto &term : observables[k].terms()) {
            auto [it, inserted] = live[shardOf(term.string)].try_emplace(
                term.string, SlotVector(slots, 0.0));
            it->second[k] += term.coefficient;
        }
    }

    // Back-propagate: O <- G^dag O G for gates in reverse order.
    // Outboxes are reused across gates to amortize allocation.
    std::vector<std::vector<Outbox>> outbox(
        num_shards, std::vector<Outbox>(num_shards));

    const auto &gates = program_->gates();
    for (auto git = gates.rbegin(); git != gates.rend(); ++git) {
        const GateInstr &g = *git;
        const bool is_rotation =
            g.op == GateOp::Rx || g.op == GateOp::Ry
            || g.op == GateOp::Rz || g.op == GateOp::Rzz
            || g.op == GateOp::Rxx || g.op == GateOp::Ryy;

        // Scatter: every source shard transforms its own live strings
        // and routes the results to per-destination outboxes. Shards
        // are independent, so this fans out over the pool.
        ThreadPool::global().run(num_shards, [&](std::size_t s) {
            for (auto &box : outbox[s])
                box.clear();
            const auto emit = [&](PauliString string, SlotVector coefs) {
                outbox[s][shardOf(string)].emplace_back(
                    std::move(string), std::move(coefs));
            };

            if (is_rotation) {
                const double angle = (g.paramIndex >= 0)
                    ? g.scale * theta[g.paramIndex] + g.offset
                    : g.offset;
                const PauliString gen = rotationGenerator(g, n);
                const double c = std::cos(angle);
                const double sn = std::sin(angle);
                for (auto &[string, coefs] : live[s]) {
                    if (string.commutesWith(gen)) {
                        emit(string, std::move(coefs));
                        continue;
                    }
                    // Q -> cos Q + sin (i P Q); i*phase is real for
                    // anticommuting P, Q.
                    PauliProduct pq = multiply(gen, string);
                    const Complex iphase = Complex(0, 1) * pq.phase;
                    assert(std::fabs(iphase.imag()) < 1e-12);
                    const double branch_sign = iphase.real();

                    SlotVector cos_branch(slots);
                    SlotVector sin_branch(slots);
                    for (std::size_t k = 0; k < slots; ++k) {
                        cos_branch[k] = c * coefs[k];
                        sin_branch[k] = sn * branch_sign * coefs[k];
                    }
                    emit(string, std::move(cos_branch));
                    emit(pq.string, std::move(sin_branch));
                }
            } else {
                for (auto &[string, coefs] : live[s]) {
                    PauliString p = string;
                    double sign = 1.0;
                    switch (g.op) {
                      case GateOp::H:
                        conjugateH(p, g.q0, sign);
                        break;
                      case GateOp::X:
                        conjugateX(p, g.q0, sign);
                        break;
                      case GateOp::S:
                        // Back-propagation applies G^dag P G, G = S.
                        conjugateSdg(p, g.q0, sign);
                        break;
                      case GateOp::Sdg:
                        conjugateS(p, g.q0, sign);
                        break;
                      case GateOp::Cx:
                        conjugateCx(p, g.q0, g.q1, sign);
                        break;
                      case GateOp::Cz:
                        conjugateCz(p, g.q0, g.q1, sign);
                        break;
                      default:
                        throw std::logic_error(
                            "PauliPropagator: unsupported gate");
                    }
                    if (sign != 1.0)
                        for (auto &x : coefs)
                            x = sign * x;
                    emit(std::move(p), std::move(coefs));
                }
            }
        });

        // Gather: rebuild each destination shard by folding the
        // outboxes in ascending source order — a fixed merge order, so
        // the result does not depend on the pool size. Truncation
        // (weight cap + coefficient threshold) happens per shard.
        ThreadPool::global().run(num_shards, [&](std::size_t d) {
            std::size_t bound = 0;
            for (std::size_t s = 0; s < num_shards; ++s)
                bound += outbox[s][d].size();
            TermMap next;
            next.reserve(bound);
            for (std::size_t s = 0; s < num_shards; ++s) {
                for (auto &[string, coefs] : outbox[s][d]) {
                    auto [it, inserted] =
                        next.try_emplace(string, std::move(coefs));
                    if (!inserted)
                        for (std::size_t k = 0; k < slots; ++k)
                            it->second[k] += coefs[k];
                }
            }
            live[d].clear();
            for (auto &[string, coefs] : next) {
                if (string.weight() > config_.maxWeight)
                    continue;
                if (maxAbs(coefs) < config_.coefThreshold)
                    continue;
                live[d].emplace(string, std::move(coefs));
            }
        });

        // Hard cap: keep the heaviest strings globally (shards walked
        // in ascending order — deterministic ranking input).
        std::size_t total = 0;
        for (const auto &shard : live)
            total += shard.size();
        if (total > config_.maxTerms) {
            std::vector<std::pair<double, PauliString>> ranked;
            ranked.reserve(total);
            for (const auto &shard : live)
                for (const auto &[string, coefs] : shard)
                    ranked.emplace_back(maxAbs(coefs), string);
            std::nth_element(
                ranked.begin(), ranked.begin() + config_.maxTerms,
                ranked.end(),
                [](const auto &a, const auto &b) {
                    return a.first > b.first;
                });
            for (std::size_t i = config_.maxTerms; i < ranked.size(); ++i)
                live[shardOf(ranked[i].second)].erase(ranked[i].second);
        }
    }
    {
        std::size_t total = 0;
        for (const auto &shard : live)
            total += shard.size();
        lastTermCount_ = total;
    }

    // <b|O'|b>: only Z-diagonal strings survive.
    std::vector<double> out(slots, 0.0);
    for (const auto &shard : live) {
        for (const auto &[string, coefs] : shard) {
            if (string.xMask() != 0)
                continue;
            const int sign =
                std::popcount(initial_bits & string.zMask()) & 1 ? -1
                                                                 : 1;
            for (std::size_t k = 0; k < slots; ++k)
                out[k] += sign * coefs[k];
        }
    }
    return out;
}

double
PauliPropagator::expectation(const std::vector<double> &theta,
                             const PauliSum &observable,
                             std::uint64_t initial_bits) const
{
    return expectations(theta, {observable}, initial_bits).front();
}

} // namespace treevqa

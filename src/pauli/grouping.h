/**
 * @file
 * Qubit-wise-commuting (QWC) grouping of Pauli terms.
 *
 * Each QWC group shares a single measurement basis, so one circuit
 * measures every term in the group (Section 1 terminology: "Hamiltonian
 * Pauli strings grouped into commuting sets, each mapped to a circuit").
 * The paper's shot accounting deliberately does NOT apply the grouping
 * discount (Section 7.3: a constant factor that cancels in the savings
 * ratio), but the framework exposes it because downstream users will want
 * the circuits-per-iteration number, and Table 1 style reports include it.
 */

#ifndef TREEVQA_PAULI_GROUPING_H
#define TREEVQA_PAULI_GROUPING_H

#include <vector>

#include "pauli/pauli_sum.h"

namespace treevqa {

/** One measurement group: indices into the source Hamiltonian's term
 * list plus the shared measurement basis. */
struct MeasurementGroup
{
    /** Term indices belonging to this group. */
    std::vector<std::size_t> termIndices;
    /**
     * The joint basis string: on each qubit, the (unique) non-identity
     * operator used by any member, or I if all members are I there.
     */
    PauliString basis;
};

/**
 * Greedy first-fit QWC grouping (the standard sorted-greedy coloring).
 *
 * Terms are visited in descending |coefficient| order and placed in the
 * first group whose every member qubit-wise commutes with them. Identity
 * terms are skipped (they need no measurement).
 */
std::vector<MeasurementGroup> groupQubitWise(const PauliSum &hamiltonian);

/** Number of distinct circuits per objective evaluation under QWC
 * grouping. */
std::size_t numMeasurementCircuits(const PauliSum &hamiltonian);

} // namespace treevqa

#endif // TREEVQA_PAULI_GROUPING_H

#include "pauli/grouping.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace treevqa {

namespace {

/** Merge `term` into the group's basis string (assumes QWC holds). */
void
mergeIntoBasis(PauliString &basis, const PauliString &term)
{
    basis = PauliString(basis.numQubits(), basis.xMask() | term.xMask(),
                        basis.zMask() | term.zMask());
}

} // namespace

std::vector<MeasurementGroup>
groupQubitWise(const PauliSum &hamiltonian)
{
    const auto &terms = hamiltonian.terms();

    // Sort non-identity term indices by descending |coefficient| so the
    // heaviest terms anchor groups.
    std::vector<std::size_t> order;
    order.reserve(terms.size());
    for (std::size_t i = 0; i < terms.size(); ++i)
        if (!terms[i].string.isIdentity())
            order.push_back(i);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return std::fabs(terms[a].coefficient)
                       > std::fabs(terms[b].coefficient);
              });

    std::vector<MeasurementGroup> groups;
    for (std::size_t idx : order) {
        const PauliString &p = terms[idx].string;
        bool placed = false;
        for (auto &group : groups) {
            // QWC against the group's merged basis is equivalent to QWC
            // against every member: the basis carries the union support.
            if (p.qubitWiseCommutesWith(group.basis)) {
                group.termIndices.push_back(idx);
                mergeIntoBasis(group.basis, p);
                placed = true;
                break;
            }
        }
        if (!placed) {
            MeasurementGroup group;
            group.termIndices.push_back(idx);
            group.basis = p;
            groups.push_back(std::move(group));
        }
    }
    return groups;
}

std::size_t
numMeasurementCircuits(const PauliSum &hamiltonian)
{
    return groupQubitWise(hamiltonian).size();
}

} // namespace treevqa

#include "pauli/pauli_sum.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <map>
#include <sstream>
#include <unordered_map>

namespace treevqa {

PauliSum::PauliSum(int num_qubits)
    : numQubits_(num_qubits)
{
    assert(num_qubits >= 0 && num_qubits <= kMaxQubits);
}

void
PauliSum::add(double coefficient, const PauliString &string)
{
    assert(string.numQubits() == numQubits_);
    for (auto &term : terms_) {
        if (term.string == string) {
            term.coefficient += coefficient;
            return;
        }
    }
    terms_.push_back(PauliTerm{coefficient, string});
}

void
PauliSum::add(double coefficient, const std::string &label)
{
    assert(static_cast<int>(label.size()) == numQubits_);
    add(coefficient, PauliString::fromLabel(label));
}

void
PauliSum::addScaled(const PauliSum &other, double factor)
{
    assert(other.numQubits_ == numQubits_);
    // Merge through a hash map: O(terms) instead of O(terms^2).
    std::unordered_map<PauliString, std::size_t, PauliStringHash> index;
    index.reserve(terms_.size() * 2);
    for (std::size_t k = 0; k < terms_.size(); ++k)
        index.emplace(terms_[k].string, k);
    for (const auto &term : other.terms_) {
        auto it = index.find(term.string);
        if (it != index.end()) {
            terms_[it->second].coefficient += factor * term.coefficient;
        } else {
            index.emplace(term.string, terms_.size());
            terms_.push_back(
                PauliTerm{factor * term.coefficient, term.string});
        }
    }
}

void
PauliSum::compress(double threshold)
{
    std::map<PauliString, double> merged;
    for (const auto &term : terms_)
        merged[term.string] += term.coefficient;
    terms_.clear();
    for (const auto &[string, coefficient] : merged)
        if (std::fabs(coefficient) > threshold)
            terms_.push_back(PauliTerm{coefficient, string});
}

double
PauliSum::coefficientOf(const PauliString &string) const
{
    for (const auto &term : terms_)
        if (term.string == string)
            return term.coefficient;
    return 0.0;
}

double
PauliSum::l1Norm() const
{
    double s = 0.0;
    for (const auto &term : terms_)
        if (!term.string.isIdentity())
            s += std::fabs(term.coefficient);
    return s;
}

double
PauliSum::l1NormWithIdentity() const
{
    double s = 0.0;
    for (const auto &term : terms_)
        s += std::fabs(term.coefficient);
    return s;
}

std::size_t
PauliSum::numMeasuredTerms() const
{
    std::size_t n = 0;
    for (const auto &term : terms_)
        if (!term.string.isIdentity())
            ++n;
    return n;
}

double
PauliSum::normalizedTrace() const
{
    for (const auto &term : terms_)
        if (term.string.isIdentity())
            return term.coefficient;
    return 0.0;
}

void
PauliSum::applyTo(const CVector &x, CVector &y) const
{
    const std::size_t dim = std::size_t{1} << numQubits_;
    assert(x.size() == dim);
    y.assign(dim, Complex(0.0, 0.0));

    static const Complex kPhases[4] = {
        Complex(1, 0), Complex(0, 1), Complex(-1, 0), Complex(0, -1)};

    for (const auto &term : terms_) {
        const std::uint64_t xm = term.string.xMask();
        const std::uint64_t zm = term.string.zMask();
        const Complex base =
            term.coefficient * kPhases[term.string.yCount() % 4];
        for (std::size_t b = 0; b < dim; ++b) {
            // P|b> = i^{|Y|} (-1)^{popcount(b & z)} |b ^ x>.
            const int sign = std::popcount(b & zm) & 1 ? -1 : 1;
            y[b ^ xm] += base * static_cast<double>(sign) * x[b];
        }
    }
}

double
PauliSum::expectation(const CVector &x) const
{
    const std::size_t dim = std::size_t{1} << numQubits_;
    assert(x.size() == dim);

    static const Complex kPhases[4] = {
        Complex(1, 0), Complex(0, 1), Complex(-1, 0), Complex(0, -1)};

    Complex total(0.0, 0.0);
    for (const auto &term : terms_) {
        const std::uint64_t xm = term.string.xMask();
        const std::uint64_t zm = term.string.zMask();
        const Complex base = kPhases[term.string.yCount() % 4];
        Complex acc(0.0, 0.0);
        for (std::size_t b = 0; b < dim; ++b) {
            const int sign = std::popcount(b & zm) & 1 ? -1 : 1;
            acc += std::conj(x[b ^ xm]) * static_cast<double>(sign) * x[b];
        }
        total += term.coefficient * base * acc;
    }
    return std::real(total);
}

void
PauliSum::scaleCoefficients(double factor)
{
    for (auto &term : terms_)
        term.coefficient *= factor;
}

std::string
PauliSum::toString(std::size_t max_terms) const
{
    std::ostringstream os;
    os << "PauliSum(" << numQubits_ << " qubits, " << terms_.size()
       << " terms)";
    std::size_t shown = 0;
    for (const auto &term : terms_) {
        if (shown++ >= max_terms) {
            os << "\n  ...";
            break;
        }
        os << "\n  " << (term.coefficient >= 0 ? "+" : "")
           << term.coefficient << " * " << term.string.toLabel();
    }
    return os.str();
}

AlignedTerms
alignTerms(const std::vector<PauliSum> &hamiltonians)
{
    AlignedTerms out;
    if (hamiltonians.empty())
        return out;

    // Deterministic superset ordering via an ordered map.
    std::map<PauliString, std::size_t> index;
    for (const auto &h : hamiltonians)
        for (const auto &term : h.terms())
            index.emplace(term.string, 0);

    std::size_t k = 0;
    out.strings.reserve(index.size());
    for (auto &[string, position] : index) {
        position = k++;
        out.strings.push_back(string);
    }

    out.coefficients.assign(
        hamiltonians.size(), std::vector<double>(out.strings.size(), 0.0));
    for (std::size_t i = 0; i < hamiltonians.size(); ++i)
        for (const auto &term : hamiltonians[i].terms())
            out.coefficients[i][index.at(term.string)] = term.coefficient;
    return out;
}

PauliSum
mixedHamiltonian(const std::vector<PauliSum> &hamiltonians)
{
    assert(!hamiltonians.empty());
    PauliSum mixed(hamiltonians.front().numQubits());
    const double inv = 1.0 / static_cast<double>(hamiltonians.size());
    for (const auto &h : hamiltonians)
        mixed.addScaled(h, inv);
    mixed.compress(0.0);
    return mixed;
}

double
l1Distance(const AlignedTerms &aligned, std::size_t i, std::size_t j)
{
    assert(i < aligned.coefficients.size());
    assert(j < aligned.coefficients.size());
    const auto &ci = aligned.coefficients[i];
    const auto &cj = aligned.coefficients[j];
    double s = 0.0;
    for (std::size_t k = 0; k < ci.size(); ++k)
        s += std::fabs(ci[k] - cj[k]);
    return s;
}

double
l1Distance(const PauliSum &a, const PauliSum &b)
{
    const AlignedTerms aligned = alignTerms({a, b});
    return l1Distance(aligned, 0, 1);
}

} // namespace treevqa

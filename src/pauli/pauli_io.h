/**
 * @file
 * Text serialization of Pauli-sum Hamiltonians.
 *
 * Downstream users bring their own Hamiltonians (from PySCF, OpenFermion
 * dumps, etc.); this module reads and writes the ubiquitous line format
 *
 *     # optional comments
 *     -0.8105479805 IIII
 *     +0.1721839326 ZIII
 *     0.12091263    XXYY
 *
 * one term per line: coefficient then label (I/X/Y/Z, character k acts
 * on qubit k). All terms must agree on qubit count; duplicates merge.
 */

#ifndef TREEVQA_PAULI_PAULI_IO_H
#define TREEVQA_PAULI_PAULI_IO_H

#include <iosfwd>
#include <string>

#include "pauli/pauli_sum.h"

namespace treevqa {

/** Serialize to the line format (deterministic term order). */
std::string toText(const PauliSum &hamiltonian);

/**
 * Parse the line format.
 * @throws std::invalid_argument on malformed lines, inconsistent qubit
 *         counts, or empty input.
 */
PauliSum pauliSumFromText(const std::string &text);

/** Write the line format to a file. @return false on I/O failure. */
bool saveToFile(const PauliSum &hamiltonian, const std::string &path);

/** Read the line format from a file.
 * @throws std::runtime_error if the file cannot be read. */
PauliSum loadFromFile(const std::string &path);

} // namespace treevqa

#endif // TREEVQA_PAULI_PAULI_IO_H

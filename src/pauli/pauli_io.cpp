#include "pauli/pauli_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace treevqa {

std::string
toText(const PauliSum &hamiltonian)
{
    // Deterministic order: compress() sorts by string.
    PauliSum sorted = hamiltonian;
    sorted.compress(0.0);

    std::ostringstream os;
    os.precision(17);
    for (const auto &term : sorted.terms())
        os << term.coefficient << " " << term.string.toLabel() << "\n";
    return os.str();
}

PauliSum
pauliSumFromText(const std::string &text)
{
    std::istringstream is(text);
    std::string line;
    int num_qubits = -1;
    std::vector<std::pair<double, std::string>> parsed;

    int line_no = 0;
    while (std::getline(is, line)) {
        ++line_no;
        // Strip comments and whitespace-only lines.
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        std::istringstream ls(line);
        double coefficient = 0.0;
        std::string label;
        if (!(ls >> coefficient))
            continue; // blank line
        if (!(ls >> label))
            throw std::invalid_argument(
                "pauliSumFromText: missing label on line "
                + std::to_string(line_no));
        std::string trailing;
        if (ls >> trailing)
            throw std::invalid_argument(
                "pauliSumFromText: trailing tokens on line "
                + std::to_string(line_no));
        if (num_qubits < 0)
            num_qubits = static_cast<int>(label.size());
        else if (static_cast<int>(label.size()) != num_qubits)
            throw std::invalid_argument(
                "pauliSumFromText: inconsistent qubit count on line "
                + std::to_string(line_no));
        parsed.emplace_back(coefficient, std::move(label));
    }
    if (parsed.empty())
        throw std::invalid_argument("pauliSumFromText: no terms");

    PauliSum h(num_qubits);
    for (const auto &[coefficient, label] : parsed)
        h.add(coefficient, PauliString::fromLabel(label));
    h.compress(0.0);
    return h;
}

bool
saveToFile(const PauliSum &hamiltonian, const std::string &path)
{
    std::ofstream file(path);
    if (!file.is_open())
        return false;
    file << "# treevqa PauliSum: " << hamiltonian.numQubits()
         << " qubits, " << hamiltonian.numTerms() << " terms\n";
    file << toText(hamiltonian);
    return static_cast<bool>(file);
}

PauliSum
loadFromFile(const std::string &path)
{
    std::ifstream file(path);
    if (!file.is_open())
        throw std::runtime_error("loadFromFile: cannot open " + path);
    std::ostringstream buffer;
    buffer << file.rdbuf();
    return pauliSumFromText(buffer.str());
}

} // namespace treevqa

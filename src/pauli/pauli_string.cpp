#include "pauli/pauli_string.h"

#include <bit>
#include <cassert>
#include <stdexcept>

namespace treevqa {

PauliString::PauliString(int num_qubits)
    : numQubits_(num_qubits)
{
    assert(num_qubits >= 0 && num_qubits <= kMaxQubits);
}

PauliString::PauliString(int num_qubits, std::uint64_t x_mask,
                         std::uint64_t z_mask)
    : numQubits_(num_qubits), xMask_(x_mask), zMask_(z_mask)
{
    assert(num_qubits >= 0 && num_qubits <= kMaxQubits);
    if (num_qubits < kMaxQubits) {
        const std::uint64_t valid = (1ull << num_qubits) - 1;
        assert((x_mask & ~valid) == 0 && (z_mask & ~valid) == 0);
    }
}

PauliString
PauliString::fromLabel(const std::string &label)
{
    if (label.size() > static_cast<std::size_t>(kMaxQubits))
        throw std::invalid_argument("Pauli label longer than 64 qubits");
    PauliString p(static_cast<int>(label.size()));
    for (std::size_t q = 0; q < label.size(); ++q)
        p.setOp(static_cast<int>(q), label[q]);
    return p;
}

char
PauliString::opAt(int q) const
{
    assert(q >= 0 && q < numQubits_);
    const bool x = (xMask_ >> q) & 1ull;
    const bool z = (zMask_ >> q) & 1ull;
    if (x && z)
        return 'Y';
    if (x)
        return 'X';
    if (z)
        return 'Z';
    return 'I';
}

void
PauliString::setOp(int q, char op)
{
    assert(q >= 0 && q < numQubits_);
    const std::uint64_t bit = 1ull << q;
    xMask_ &= ~bit;
    zMask_ &= ~bit;
    switch (op) {
      case 'I':
        break;
      case 'X':
        xMask_ |= bit;
        break;
      case 'Y':
        xMask_ |= bit;
        zMask_ |= bit;
        break;
      case 'Z':
        zMask_ |= bit;
        break;
      default:
        throw std::invalid_argument("invalid Pauli character");
    }
}

int
PauliString::weight() const
{
    return std::popcount(xMask_ | zMask_);
}

int
PauliString::yCount() const
{
    return std::popcount(xMask_ & zMask_);
}

bool
PauliString::commutesWith(const PauliString &other) const
{
    // Symplectic inner product: parity of x1.z2 + z1.x2.
    const int s = std::popcount(xMask_ & other.zMask_)
                + std::popcount(zMask_ & other.xMask_);
    return (s % 2) == 0;
}

bool
PauliString::qubitWiseCommutesWith(const PauliString &other) const
{
    // On each qubit the two single-qubit Paulis must commute, i.e. be
    // equal or have at least one identity. Conflicts occur exactly where
    // both are non-identity and their (x,z) bits differ.
    const std::uint64_t support_a = xMask_ | zMask_;
    const std::uint64_t support_b = other.xMask_ | other.zMask_;
    const std::uint64_t both = support_a & support_b;
    const std::uint64_t diff =
        (xMask_ ^ other.xMask_) | (zMask_ ^ other.zMask_);
    return (both & diff) == 0;
}

std::string
PauliString::toLabel() const
{
    std::string label(static_cast<std::size_t>(numQubits_), 'I');
    for (int q = 0; q < numQubits_; ++q)
        label[static_cast<std::size_t>(q)] = opAt(q);
    return label;
}

bool
PauliString::operator<(const PauliString &other) const
{
    if (zMask_ != other.zMask_)
        return zMask_ < other.zMask_;
    if (xMask_ != other.xMask_)
        return xMask_ < other.xMask_;
    return numQubits_ < other.numQubits_;
}

std::size_t
PauliString::hash() const
{
    // Mix the two masks with a Fibonacci-style multiplier.
    std::uint64_t h = xMask_ * 0x9e3779b97f4a7c15ull;
    h ^= zMask_ + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return static_cast<std::size_t>(h);
}

PauliProduct
multiply(const PauliString &a, const PauliString &b)
{
    assert(a.numQubits() == b.numQubits());
    const std::uint64_t x3 = a.xMask() ^ b.xMask();
    const std::uint64_t z3 = a.zMask() ^ b.zMask();

    // a = i^{ka} X^{xa} Z^{za}, b likewise; X^{xa}Z^{za} X^{xb}Z^{zb}
    // = (-1)^{za.xb} X^{x3} Z^{z3}. Recanonicalize with k3 Y's.
    const int ka = a.yCount();
    const int kb = b.yCount();
    const int k3 = std::popcount(x3 & z3);
    const int swaps = std::popcount(a.zMask() & b.xMask());
    int exponent = (ka + kb - k3 + 2 * swaps) % 4;
    if (exponent < 0)
        exponent += 4;

    static const Complex kPhases[4] = {
        Complex(1, 0), Complex(0, 1), Complex(-1, 0), Complex(0, -1)};

    return PauliProduct{kPhases[exponent],
                        PauliString(a.numQubits(), x3, z3)};
}

} // namespace treevqa

/**
 * @file
 * Real-weighted sums of Pauli strings: the Hamiltonian type of TreeVQA.
 *
 * A VQA task Hamiltonian is H = sum_j c_j P_j with real c_j (Hermitian by
 * construction). This module provides the operations the framework is
 * built on:
 *
 *  - term bookkeeping with duplicate merging and near-zero pruning;
 *  - the padded-superset alignment of several task Hamiltonians
 *    (Section 5.2.1), which underlies both the cluster mixed Hamiltonian
 *    and the l1 coefficient distance (Section 5.2.4);
 *  - application to a dense statevector (used by the Lanczos ground-truth
 *    solver);
 *  - l1 norms and trace, needed by shot accounting and the noise model.
 */

#ifndef TREEVQA_PAULI_PAULI_SUM_H
#define TREEVQA_PAULI_PAULI_SUM_H

#include <string>
#include <vector>

#include "common/types.h"
#include "pauli/pauli_string.h"

namespace treevqa {

/** One weighted term c * P of a Hamiltonian. */
struct PauliTerm
{
    double coefficient = 0.0;
    PauliString string;
};

/** Hermitian operator represented as a real-weighted Pauli sum. */
class PauliSum
{
  public:
    /** Empty (zero) operator on `num_qubits` qubits. */
    explicit PauliSum(int num_qubits = 0);

    int numQubits() const { return numQubits_; }
    std::size_t numTerms() const { return terms_.size(); }
    const std::vector<PauliTerm> &terms() const { return terms_; }

    /** Append c * P, merging into an existing equal string if present. */
    void add(double coefficient, const PauliString &string);

    /** Append c * P given as a label such as "XIZY". */
    void add(double coefficient, const std::string &label);

    /** Add another sum (term-merged), optionally scaled. */
    void addScaled(const PauliSum &other, double factor = 1.0);

    /** Merge duplicates and drop |c| <= threshold terms. */
    void compress(double threshold = 1e-12);

    /** Coefficient of the given string (0 if absent). O(#terms). */
    double coefficientOf(const PauliString &string) const;

    /** Sum of |c_j| over non-identity terms: the shot-cost driver
     * (Section 2.2). */
    double l1Norm() const;

    /** Sum of |c_j| over all terms including identity. */
    double l1NormWithIdentity() const;

    /** Number of non-identity terms (identity needs no measurement). */
    std::size_t numMeasuredTerms() const;

    /** Tr(H) / 2^n = the identity coefficient (other Paulis are
     * traceless). Used by the depolarizing noise model. */
    double normalizedTrace() const;

    /** y = H x on a dense 2^n statevector. y is resized as needed. */
    void applyTo(const CVector &x, CVector &y) const;

    /** <x|H|x> for a normalized dense vector. */
    double expectation(const CVector &x) const;

    /** Scale all coefficients in place. */
    void scaleCoefficients(double factor);

    /** Multi-line human-readable dump (for logs and examples). */
    std::string toString(std::size_t max_terms = 16) const;

  private:
    int numQubits_ = 0;
    std::vector<PauliTerm> terms_;
};

/**
 * The padded alignment of N task Hamiltonians over the union of their
 * Pauli terms (Section 5.2.1). `strings` is the ordered superset;
 * `coefficients[i][k]` is task i's coefficient of strings[k], zero-padded
 * where the task lacks the term.
 */
struct AlignedTerms
{
    std::vector<PauliString> strings;
    std::vector<std::vector<double>> coefficients;
};

/** Compute the padded-superset alignment of several Hamiltonians. */
AlignedTerms alignTerms(const std::vector<PauliSum> &hamiltonians);

/**
 * The cluster mixed Hamiltonian H_mixed = (1/N) sum_i H_i^padded
 * (Section 5.2.1).
 */
PauliSum mixedHamiltonian(const std::vector<PauliSum> &hamiltonians);

/**
 * l1 coefficient distance d(H_i, H_j) = || c_i - c_j ||_1 over the padded
 * alignment (Section 5.2.4). `aligned` must come from alignTerms on the
 * same task set.
 */
double l1Distance(const AlignedTerms &aligned, std::size_t i,
                  std::size_t j);

/** Convenience: pairwise l1 distance between two Hamiltonians. */
double l1Distance(const PauliSum &a, const PauliSum &b);

} // namespace treevqa

#endif // TREEVQA_PAULI_PAULI_SUM_H

/**
 * @file
 * Pauli string representation in the symplectic (X/Z bitmask) form.
 *
 * A Pauli string P on n qubits is stored as two 64-bit masks (x, z):
 * qubit q carries X if bit q of x is set, Z if bit q of z is set, Y if
 * both, I if neither. Canonically P = i^{|Y|} X^x Z^z, where |Y| is the
 * number of Y positions; this makes products, commutation checks and
 * statevector application O(1)-per-qubit bit tricks.
 *
 * Up to 64 qubits are supported, which covers every benchmark in the
 * paper (largest: 28-qubit C2H2 and the large Ising chain).
 */

#ifndef TREEVQA_PAULI_PAULI_STRING_H
#define TREEVQA_PAULI_PAULI_STRING_H

#include <cstdint>
#include <string>

#include "common/types.h"

namespace treevqa {

/** Maximum qubit count representable by the bitmask encoding. */
inline constexpr int kMaxQubits = 64;

/** An n-qubit Pauli string (no coefficient, no phase). */
class PauliString
{
  public:
    /** The identity string on `num_qubits` qubits. */
    explicit PauliString(int num_qubits = 0);

    /** Construct from explicit masks. */
    PauliString(int num_qubits, std::uint64_t x_mask, std::uint64_t z_mask);

    /**
     * Parse a label such as "XIZY": character k acts on qubit k.
     * Accepts I, X, Y, Z (upper case).
     */
    static PauliString fromLabel(const std::string &label);

    int numQubits() const { return numQubits_; }
    std::uint64_t xMask() const { return xMask_; }
    std::uint64_t zMask() const { return zMask_; }

    /** The single-qubit operator at position q as 'I','X','Y','Z'. */
    char opAt(int q) const;

    /** Set the single-qubit operator at position q. */
    void setOp(int q, char op);

    /** Number of non-identity positions. */
    int weight() const;

    /** Number of Y positions (needed for the canonical phase). */
    int yCount() const;

    /** True if the string is the identity. */
    bool isIdentity() const { return xMask_ == 0 && zMask_ == 0; }

    /** True if all positions are I or Z (measurable in computational
     * basis without rotation). */
    bool isDiagonal() const { return xMask_ == 0; }

    /** Full (anti)commutation: [P,Q] = 0 iff the symplectic form
     * vanishes. */
    bool commutesWith(const PauliString &other) const;

    /**
     * Qubit-wise commutation: on every qubit the two operators are equal
     * or at least one is the identity. This is the grouping criterion for
     * shared measurement bases (Section 7.3).
     */
    bool qubitWiseCommutesWith(const PauliString &other) const;

    /** Label such as "XIZY". */
    std::string toLabel() const;

    bool operator==(const PauliString &other) const
    {
        return numQubits_ == other.numQubits_ && xMask_ == other.xMask_
            && zMask_ == other.zMask_;
    }
    bool operator!=(const PauliString &other) const
    {
        return !(*this == other);
    }
    /** Lexicographic order on (z, x); usable as a map key. */
    bool operator<(const PauliString &other) const;

    /** Hash usable with unordered containers. */
    std::size_t hash() const;

  private:
    int numQubits_ = 0;
    std::uint64_t xMask_ = 0;
    std::uint64_t zMask_ = 0;
};

/** Product of two Pauli strings: phase * string, phase in {1,i,-1,-i}. */
struct PauliProduct
{
    Complex phase;
    PauliString string;
};

/** Multiply two Pauli strings on the same register. */
PauliProduct multiply(const PauliString &a, const PauliString &b);

/** std::hash adapter. */
struct PauliStringHash
{
    std::size_t operator()(const PauliString &p) const { return p.hash(); }
};

} // namespace treevqa

#endif // TREEVQA_PAULI_PAULI_STRING_H

#include "opt/nelder_mead.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <numeric>

namespace treevqa {

NelderMead::NelderMead(NelderMeadConfig config)
    : config_(config)
{
}

void
NelderMead::reset(const std::vector<double> &x0)
{
    best_ = x0;
    points_.clear();
    values_.clear();
    simplexBuilt_ = false;
    k_ = 0;
    lastEvals_ = 0;
}

void
NelderMead::buildSimplex(const BatchObjective &objective)
{
    // All n+1 initial vertices are independent: one probe batch.
    const std::size_t n = best_.size();
    points_.clear();
    points_.push_back(best_);
    for (std::size_t i = 0; i < n; ++i) {
        std::vector<double> p = best_;
        p[i] += config_.initialStep;
        points_.push_back(std::move(p));
    }
    values_ = objective(points_);
    lastEvals_ = static_cast<int>(n + 1);
    simplexBuilt_ = true;
    sortSimplex();
}

void
NelderMead::sortSimplex()
{
    std::vector<std::size_t> order(points_.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return values_[a] < values_[b];
    });
    std::vector<std::vector<double>> pts;
    std::vector<double> vals;
    pts.reserve(points_.size());
    vals.reserve(values_.size());
    for (std::size_t i : order) {
        pts.push_back(std::move(points_[i]));
        vals.push_back(values_[i]);
    }
    points_ = std::move(pts);
    values_ = std::move(vals);
    best_ = points_.front();
}

double
NelderMead::simplexSpread() const
{
    if (values_.empty())
        return 0.0;
    return values_.back() - values_.front();
}

double
NelderMead::stepBatch(const BatchObjective &objective)
{
    assert(!best_.empty());
    lastEvals_ = 0;

    if (!simplexBuilt_) {
        buildSimplex(objective);
        ++k_;
        return values_.front();
    }

    const std::size_t n = best_.size();
    // Reflect/expand/contract are sequential decisions: each probe
    // depends on the previous value, so they go out as 1-point batches.
    const auto eval1 = [&](const std::vector<double> &point) {
        return objective({point})[0];
    };

    // Centroid of all but the worst vertex.
    std::vector<double> centroid(n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            centroid[j] += points_[i][j];
    for (auto &c : centroid)
        c /= static_cast<double>(n);

    const std::vector<double> &worst = points_.back();
    std::vector<double> reflected(n);
    for (std::size_t j = 0; j < n; ++j)
        reflected[j] =
            centroid[j] + config_.alpha * (centroid[j] - worst[j]);
    const double f_r = eval1(reflected);
    ++lastEvals_;

    if (f_r < values_.front()) {
        // Try expansion.
        std::vector<double> expanded(n);
        for (std::size_t j = 0; j < n; ++j)
            expanded[j] =
                centroid[j] + config_.gamma * (reflected[j] - centroid[j]);
        const double f_e = eval1(expanded);
        ++lastEvals_;
        if (f_e < f_r) {
            points_.back() = std::move(expanded);
            values_.back() = f_e;
        } else {
            points_.back() = std::move(reflected);
            values_.back() = f_r;
        }
    } else if (f_r < values_[values_.size() - 2]) {
        points_.back() = std::move(reflected);
        values_.back() = f_r;
    } else {
        // Contraction toward the centroid.
        std::vector<double> contracted(n);
        for (std::size_t j = 0; j < n; ++j)
            contracted[j] =
                centroid[j] + config_.rho * (worst[j] - centroid[j]);
        const double f_c = eval1(contracted);
        ++lastEvals_;
        if (f_c < values_.back()) {
            points_.back() = std::move(contracted);
            values_.back() = f_c;
        } else {
            // Shrink toward the best vertex: the n shrunk vertices are
            // independent, so they go out as one probe batch.
            for (std::size_t i = 1; i < points_.size(); ++i)
                for (std::size_t j = 0; j < n; ++j)
                    points_[i][j] = points_[0][j]
                        + config_.sigma * (points_[i][j] - points_[0][j]);
            const std::vector<std::vector<double>> shrunk(
                points_.begin() + 1, points_.end());
            const std::vector<double> shrunk_values = objective(shrunk);
            for (std::size_t i = 1; i < points_.size(); ++i) {
                values_[i] = shrunk_values[i - 1];
                ++lastEvals_;
            }
        }
    }

    sortSimplex();
    ++k_;
    return values_.front();
}

std::unique_ptr<IterativeOptimizer>
NelderMead::cloneConfig() const
{
    return std::make_unique<NelderMead>(config_);
}

JsonValue
NelderMead::saveState() const
{
    JsonValue out = JsonValue::object();
    out.set("optimizer", JsonValue(name()));
    JsonValue points = JsonValue::array();
    for (const auto &p : points_)
        points.push_back(paramsToJson(p));
    out.set("points", std::move(points));
    out.set("values", paramsToJson(values_));
    out.set("best", paramsToJson(best_));
    out.set("simplexBuilt", JsonValue(simplexBuilt_));
    out.set("k", JsonValue(static_cast<std::int64_t>(k_)));
    out.set("lastEvals",
            JsonValue(static_cast<std::int64_t>(lastEvals_)));
    return out;
}

void
NelderMead::loadState(const JsonValue &state)
{
    if (state.at("optimizer").asString() != name())
        throw std::runtime_error("NelderMead: checkpoint holds "
                                 + state.at("optimizer").asString()
                                 + " state");
    points_.clear();
    for (const JsonValue &p : state.at("points").asArray())
        points_.push_back(paramsFromJson(p));
    values_ = paramsFromJson(state.at("values"));
    best_ = paramsFromJson(state.at("best"));
    simplexBuilt_ = state.at("simplexBuilt").asBool();
    k_ = static_cast<int>(state.at("k").asInt());
    lastEvals_ = static_cast<int>(state.at("lastEvals").asInt());
}

} // namespace treevqa

/**
 * @file
 * COBYLA-style derivative-free optimizer.
 *
 * Constrained Optimization BY Linear Approximations (Powell 1994) for
 * the unconstrained objectives of VQA: the optimizer keeps a simplex of
 * n+1 interpolation points, fits the (unique) linear model through them,
 * and takes a trust-region step against that model; the trust radius rho
 * shrinks when linear steps stop producing improvement. This reproduces
 * the optimization *dynamics* the paper relies on in Sections 8.6-8.7:
 * local linear approximations, no gradient estimates, roughly one
 * objective evaluation per iteration after the initial simplex build,
 * strong early progress and susceptibility to local minima in large
 * parameter spaces.
 *
 * Constraint handling from the original algorithm is omitted — every VQA
 * objective in the paper is unconstrained.
 */

#ifndef TREEVQA_OPT_COBYLA_H
#define TREEVQA_OPT_COBYLA_H

#include "opt/optimizer.h"

namespace treevqa {

/** COBYLA hyperparameters. */
struct CobylaConfig
{
    double rhoBegin = 0.30; ///< initial trust-region radius
    double rhoEnd = 1e-4;   ///< final radius (convergence floor)
    double shrink = 0.5;    ///< radius multiplier on failure
};

/** Stateful COBYLA stepper. */
class Cobyla : public IterativeOptimizer
{
  public:
    explicit Cobyla(CobylaConfig config = CobylaConfig{});

    void reset(const std::vector<double> &x0) override;
    /** One iteration; the initial simplex (n+1 points) goes out as one
     * probe batch, the trust-region trial as a single probe. */
    double stepBatch(const BatchObjective &objective) override;
    const std::vector<double> &params() const override { return best_; }
    int lastStepEvals() const override { return lastEvals_; }
    int evalsPerIteration() const override { return 1; }
    /** Worst case: a (re)build of the n+1-point simplex. */
    int maxEvalsPerStep() const override
    {
        return static_cast<int>(best_.size()) + 1;
    }
    int iteration() const override { return k_; }
    std::string name() const override { return "COBYLA"; }
    std::unique_ptr<IterativeOptimizer> cloneConfig() const override;
    JsonValue saveState() const override;
    void loadState(const JsonValue &state) override;

    double rho() const { return rho_; }
    bool converged() const { return rho_ <= config_.rhoEnd; }

  private:
    /** Build the initial simplex around x0 (n+1 evaluations, batched). */
    void buildSimplex(const BatchObjective &objective);
    /** Fit the linear model gradient through the current simplex. */
    std::vector<double> fitGradient() const;

    CobylaConfig config_;
    double rho_ = 0.0;
    std::vector<std::vector<double>> points_;
    std::vector<double> values_;
    std::vector<double> best_;
    double bestValue_ = 0.0;
    bool simplexBuilt_ = false;
    int k_ = 0;
    int lastEvals_ = 0;
};

} // namespace treevqa

#endif // TREEVQA_OPT_COBYLA_H

/**
 * @file
 * Iterative optimizer interface.
 *
 * TreeVQA drives optimizers one iteration at a time (Algorithm 2: each
 * VQA-Cluster-Step optimizes, records losses, checks split conditions),
 * so the interface is a stateful stepper rather than a run-to-convergence
 * minimizer. Implementations report how many objective evaluations a step
 * costs, which the caller converts to shots.
 *
 * The framework treats optimizers as black boxes that only need objective
 * values — the paper's plug-and-play claim (Sections 5.2.2, 8.6, 9.2) —
 * and ships SPSA (primary), COBYLA (alternate) and Nelder-Mead (extra).
 *
 * Batched evaluation: every shipped optimizer emits *known-independent*
 * sets of parameter probes per iteration (the SPSA +/- pair, simplex
 * builds and shrinks, the full implicit-filtering stencil), so the
 * primary entry point is stepBatch(), which hands whole probe sets to a
 * BatchObjective that may evaluate them in parallel. step() with a
 * plain one-at-a-time Objective remains available and evaluates each
 * batch serially in submission order, so the two paths see identical
 * evaluation sequences and produce identical iterates.
 */

#ifndef TREEVQA_OPT_OPTIMIZER_H
#define TREEVQA_OPT_OPTIMIZER_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/json.h"

namespace treevqa {

/** Objective callback: loss value at a parameter vector. */
using Objective = std::function<double(const std::vector<double> &)>;

/**
 * Batched objective callback: losses for a set of independent
 * parameter probes, in probe order. Implementations may evaluate the
 * probes concurrently; optimizers only submit probes whose evaluations
 * are mutually independent within one call.
 */
using BatchObjective = std::function<std::vector<double>(
    const std::vector<std::vector<double>> &)>;

/** Stateful one-iteration-at-a-time minimizer. */
class IterativeOptimizer
{
  public:
    virtual ~IterativeOptimizer() = default;

    /** (Re)start from the given parameter vector. */
    virtual void reset(const std::vector<double> &x0) = 0;

    /**
     * Perform one optimizer iteration, submitting each per-iterate set
     * of independent probes as one BatchObjective call.
     * @return the iteration's loss estimate (implementation-defined;
     *         for SPSA the mean of the two perturbed evaluations).
     */
    virtual double stepBatch(const BatchObjective &objective) = 0;

    /**
     * One iteration against a plain serial objective: adapts
     * `objective` into a batch callback that evaluates probes one at a
     * time in order, then delegates to stepBatch(). Identical results
     * and evaluation sequence to the batch path.
     */
    double step(const Objective &objective);

    /** Current parameter iterate. */
    virtual const std::vector<double> &params() const = 0;

    /** Objective evaluations consumed by the *last* step call. */
    virtual int lastStepEvals() const = 0;

    /** Typical evaluations per iteration (SPSA: 2; COBYLA: ~1). */
    virtual int evalsPerIteration() const = 0;

    /**
     * Worst-case evaluations a single step can consume in the
     * optimizer's *current* state (e.g. a Nelder-Mead shrink or a
     * COBYLA simplex rebuild). The TreeController uses this bound to
     * decide whether a whole round of cluster steps fits the remaining
     * shot budget and can therefore be sharded across threads.
     */
    virtual int maxEvalsPerStep() const { return evalsPerIteration(); }

    /** Iterations executed since reset. */
    virtual int iteration() const = 0;

    /** Human-readable optimizer name for reports. */
    virtual std::string name() const = 0;

    /** Deep copy preserving the optimizer's configuration but NOT its
     * iterate (children re-reset with inherited parameters). */
    virtual std::unique_ptr<IterativeOptimizer> cloneConfig() const = 0;

    /**
     * Serialize the optimizer's complete *dynamic* state (iterate,
     * iteration counter, simplex/stencil internals, private RNG) as a
     * JSON object. Hyperparameters are NOT included: they belong to
     * construction, so a checkpoint is restored into an instance built
     * from the same spec. The contract — the basis of bit-identical
     * checkpoint resume — is that
     *     b.loadState(a.saveState())
     * makes b produce exactly the evaluation requests and iterates a
     * would have produced from that point on, bit for bit.
     */
    virtual JsonValue saveState() const = 0;

    /** Restore a snapshot taken by saveState() on an instance with the
     * same configuration. Throws std::runtime_error on malformed or
     * mismatched state. */
    virtual void loadState(const JsonValue &state) = 0;
};

/** saveState/loadState helpers shared by the shipped optimizers. */
JsonValue paramsToJson(const std::vector<double> &values);
std::vector<double> paramsFromJson(const JsonValue &array);

} // namespace treevqa

#endif // TREEVQA_OPT_OPTIMIZER_H

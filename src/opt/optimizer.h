/**
 * @file
 * Iterative optimizer interface.
 *
 * TreeVQA drives optimizers one iteration at a time (Algorithm 2: each
 * VQA-Cluster-Step optimizes, records losses, checks split conditions),
 * so the interface is a stateful stepper rather than a run-to-convergence
 * minimizer. Implementations report how many objective evaluations a step
 * costs, which the caller converts to shots.
 *
 * The framework treats optimizers as black boxes that only need objective
 * values — the paper's plug-and-play claim (Sections 5.2.2, 8.6, 9.2) —
 * and ships SPSA (primary), COBYLA (alternate) and Nelder-Mead (extra).
 */

#ifndef TREEVQA_OPT_OPTIMIZER_H
#define TREEVQA_OPT_OPTIMIZER_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace treevqa {

/** Objective callback: loss value at a parameter vector. */
using Objective = std::function<double(const std::vector<double> &)>;

/** Stateful one-iteration-at-a-time minimizer. */
class IterativeOptimizer
{
  public:
    virtual ~IterativeOptimizer() = default;

    /** (Re)start from the given parameter vector. */
    virtual void reset(const std::vector<double> &x0) = 0;

    /**
     * Perform one optimizer iteration against `objective`.
     * @return the iteration's loss estimate (implementation-defined; for
     *         SPSA the mean of the two perturbed evaluations).
     */
    virtual double step(const Objective &objective) = 0;

    /** Current parameter iterate. */
    virtual const std::vector<double> &params() const = 0;

    /** Objective evaluations consumed by the *last* step() call. */
    virtual int lastStepEvals() const = 0;

    /** Typical evaluations per iteration (SPSA: 2; COBYLA: ~1). */
    virtual int evalsPerIteration() const = 0;

    /** Iterations executed since reset. */
    virtual int iteration() const = 0;

    /** Human-readable optimizer name for reports. */
    virtual std::string name() const = 0;

    /** Deep copy preserving the optimizer's configuration but NOT its
     * iterate (children re-reset with inherited parameters). */
    virtual std::unique_ptr<IterativeOptimizer> cloneConfig() const = 0;
};

} // namespace treevqa

#endif // TREEVQA_OPT_OPTIMIZER_H

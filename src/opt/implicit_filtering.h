/**
 * @file
 * Implicit Filtering optimizer (Kelley), the Section 9.2 extension.
 *
 * A derivative-free method for noisy objectives: central-difference
 * gradients are estimated on a stencil of width h, a projected
 * line-search step is taken, and when the stencil stops producing
 * descent the width h is halved — "filtering out" noise at ever finer
 * scales. The paper highlights it because its current stencil width is
 * a natural signal for TreeVQA's cluster granularity (coarse h: broad
 * exploration, shared clusters; fine h: precision refinement, split
 * clusters); the stencil width is exposed for exactly that use.
 *
 * Cost: 2n evaluations per iteration (central differences) plus the
 * line-search probes.
 */

#ifndef TREEVQA_OPT_IMPLICIT_FILTERING_H
#define TREEVQA_OPT_IMPLICIT_FILTERING_H

#include "opt/optimizer.h"

namespace treevqa {

/** Implicit-filtering hyperparameters. */
struct ImplicitFilteringConfig
{
    double initialStencil = 0.4; ///< starting difference width h
    double minStencil = 1e-4;    ///< convergence floor on h
    double shrink = 0.5;         ///< h multiplier on stencil failure
    int lineSearchSteps = 3;     ///< backtracking probes per iteration
};

/** Stateful implicit-filtering stepper. */
class ImplicitFiltering : public IterativeOptimizer
{
  public:
    explicit ImplicitFiltering(
        ImplicitFilteringConfig config = ImplicitFilteringConfig{});

    void reset(const std::vector<double> &x0) override;
    /** One iteration; the full 2n-point central-difference stencil
     * goes out as one probe batch (line-search probes stay serial:
     * each depends on the previous one failing). */
    double stepBatch(const BatchObjective &objective) override;
    const std::vector<double> &params() const override { return x_; }
    int lastStepEvals() const override { return lastEvals_; }
    int evalsPerIteration() const override
    {
        return 2 * static_cast<int>(x_.size()) + 1;
    }
    /** Worst case: center + full stencil + every line-search probe. */
    int maxEvalsPerStep() const override
    {
        return 1 + 2 * static_cast<int>(x_.size())
             + config_.lineSearchSteps;
    }
    int iteration() const override { return k_; }
    std::string name() const override { return "ImplicitFiltering"; }
    std::unique_ptr<IterativeOptimizer> cloneConfig() const override;
    JsonValue saveState() const override;
    void loadState(const JsonValue &state) override;

    /** Current stencil width (the cluster-granularity signal of
     * Section 9.2). */
    double stencilWidth() const { return h_; }
    bool converged() const { return h_ <= config_.minStencil; }

  private:
    ImplicitFilteringConfig config_;
    std::vector<double> x_;
    double h_ = 0.0;
    double fx_ = 0.0;
    bool haveFx_ = false;
    int k_ = 0;
    int lastEvals_ = 0;
};

} // namespace treevqa

#endif // TREEVQA_OPT_IMPLICIT_FILTERING_H

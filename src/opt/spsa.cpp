#include "opt/spsa.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace treevqa {

Spsa::Spsa(SpsaConfig config, std::uint64_t seed)
    : config_(config), rng_(seed), seed_(seed)
{
}

void
Spsa::reset(const std::vector<double> &x0)
{
    x_ = x0;
    k_ = 0;
}

double
Spsa::currentLearningRate() const
{
    return config_.a
         / std::pow(config_.bigA + k_ + 1.0, config_.alpha);
}

double
Spsa::currentPerturbation() const
{
    return config_.c / std::pow(k_ + 1.0, config_.gamma);
}

double
Spsa::stepBatch(const BatchObjective &objective)
{
    assert(!x_.empty());
    const std::size_t n = x_.size();
    const double ak = currentLearningRate();
    const double ck = currentPerturbation();

    const std::vector<double> delta = rng_.rademacherVector(n);

    std::vector<std::vector<double>> probes(2, x_);
    for (std::size_t i = 0; i < n; ++i) {
        probes[0][i] += ck * delta[i];
        probes[1][i] -= ck * delta[i];
    }
    const std::vector<double> losses = objective(probes);
    const double lp = losses[0];
    const double lm = losses[1];
    const double diff = (lp - lm) / (2.0 * ck);

    // g_i = diff / delta_i; for Rademacher, 1/delta_i == delta_i.
    std::vector<double> update(n);
    double norm_sq = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        update[i] = ak * diff * delta[i];
        norm_sq += update[i] * update[i];
    }
    // Optional trust clip to keep early noisy steps from exploding.
    if (config_.maxStepNorm > 0.0) {
        const double norm = std::sqrt(norm_sq);
        if (norm > config_.maxStepNorm) {
            const double scale = config_.maxStepNorm / norm;
            for (auto &u : update)
                u *= scale;
        }
    }
    for (std::size_t i = 0; i < n; ++i)
        x_[i] -= update[i];

    ++k_;
    return 0.5 * (lp + lm);
}

JsonValue
Spsa::saveState() const
{
    JsonValue out = JsonValue::object();
    out.set("optimizer", JsonValue(name()));
    out.set("x", paramsToJson(x_));
    out.set("k", JsonValue(static_cast<std::int64_t>(k_)));
    out.set("rng", rngStateToJson(rng_.state()));
    return out;
}

void
Spsa::loadState(const JsonValue &state)
{
    if (state.at("optimizer").asString() != name())
        throw std::runtime_error("SPSA: checkpoint holds "
                                 + state.at("optimizer").asString()
                                 + " state");
    x_ = paramsFromJson(state.at("x"));
    k_ = static_cast<int>(state.at("k").asInt());
    rng_.setState(rngStateFromJson(state.at("rng")));
}

std::unique_ptr<IterativeOptimizer>
Spsa::cloneConfig() const
{
    // Child optimizers get a decorrelated stream derived from the seed.
    return std::make_unique<Spsa>(
        config_, seed_ * 0x9e3779b97f4a7c15ull + 0x1234567ull + k_);
}

} // namespace treevqa

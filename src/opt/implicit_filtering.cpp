#include "opt/implicit_filtering.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace treevqa {

ImplicitFiltering::ImplicitFiltering(ImplicitFilteringConfig config)
    : config_(config), h_(config.initialStencil)
{
}

void
ImplicitFiltering::reset(const std::vector<double> &x0)
{
    x_ = x0;
    h_ = config_.initialStencil;
    haveFx_ = false;
    k_ = 0;
    lastEvals_ = 0;
}

double
ImplicitFiltering::stepBatch(const BatchObjective &objective)
{
    assert(!x_.empty());
    lastEvals_ = 0;
    const std::size_t n = x_.size();

    if (!haveFx_) {
        fx_ = objective({x_})[0];
        ++lastEvals_;
        haveFx_ = true;
    }
    if (converged()) {
        ++k_;
        return fx_;
    }

    // Central-difference gradient on the current stencil; the full
    // 2n-point stencil is independent of the center value, so it goes
    // out as one probe batch (probes ordered +0, -0, +1, -1, ...).
    std::vector<std::vector<double>> stencil;
    stencil.reserve(2 * n);
    for (std::size_t i = 0; i < n; ++i) {
        std::vector<double> xp = x_, xm = x_;
        xp[i] += h_;
        xm[i] -= h_;
        stencil.push_back(std::move(xp));
        stencil.push_back(std::move(xm));
    }
    const std::vector<double> stencil_values = objective(stencil);
    lastEvals_ += static_cast<int>(2 * n);

    // Gradient plus the best stencil point (classic implicit-filtering
    // safeguard).
    std::vector<double> gradient(n, 0.0);
    double stencil_best = fx_;
    std::size_t stencil_best_index = stencil.size();
    for (std::size_t i = 0; i < n; ++i) {
        const double fp = stencil_values[2 * i];
        const double fm = stencil_values[2 * i + 1];
        gradient[i] = (fp - fm) / (2.0 * h_);
        if (fp < stencil_best) {
            stencil_best = fp;
            stencil_best_index = 2 * i;
        }
        if (fm < stencil_best) {
            stencil_best = fm;
            stencil_best_index = 2 * i + 1;
        }
    }

    double gnorm = 0.0;
    for (double g : gradient)
        gnorm += g * g;
    gnorm = std::sqrt(gnorm);

    bool improved = false;
    if (gnorm > 1e-14) {
        // Backtracking line search along -gradient, starting at a step
        // that moves h along the steepest coordinate.
        double step_size = h_ / gnorm * std::sqrt(n);
        for (int probe = 0; probe < config_.lineSearchSteps; ++probe) {
            std::vector<double> trial = x_;
            for (std::size_t i = 0; i < n; ++i)
                trial[i] -= step_size * gradient[i];
            const double ft = objective({trial})[0];
            ++lastEvals_;
            if (ft < fx_) {
                x_ = std::move(trial);
                fx_ = ft;
                improved = true;
                break;
            }
            step_size *= 0.5;
        }
    }
    if (!improved && stencil_best_index < stencil.size()) {
        // The stencil itself found descent the model missed.
        x_ = std::move(stencil[stencil_best_index]);
        fx_ = stencil_best;
        improved = true;
    }
    if (!improved) {
        // Stencil failure: refine the filter scale.
        h_ = std::max(config_.minStencil, h_ * config_.shrink);
    }

    ++k_;
    return fx_;
}

std::unique_ptr<IterativeOptimizer>
ImplicitFiltering::cloneConfig() const
{
    return std::make_unique<ImplicitFiltering>(config_);
}

JsonValue
ImplicitFiltering::saveState() const
{
    JsonValue out = JsonValue::object();
    out.set("optimizer", JsonValue(name()));
    out.set("x", paramsToJson(x_));
    out.set("h", JsonValue(h_));
    out.set("fx", jsonNumberOrNull(fx_));
    out.set("haveFx", JsonValue(haveFx_));
    out.set("k", JsonValue(static_cast<std::int64_t>(k_)));
    out.set("lastEvals",
            JsonValue(static_cast<std::int64_t>(lastEvals_)));
    return out;
}

void
ImplicitFiltering::loadState(const JsonValue &state)
{
    if (state.at("optimizer").asString() != name())
        throw std::runtime_error("ImplicitFiltering: checkpoint holds "
                                 + state.at("optimizer").asString()
                                 + " state");
    x_ = paramsFromJson(state.at("x"));
    h_ = state.at("h").asDouble();
    const JsonValue &fx = state.at("fx");
    fx_ = fx.isNull() ? 0.0 : fx.asDouble();
    haveFx_ = state.at("haveFx").asBool();
    k_ = static_cast<int>(state.at("k").asInt());
    lastEvals_ = static_cast<int>(state.at("lastEvals").asInt());
}

} // namespace treevqa

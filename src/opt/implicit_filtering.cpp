#include "opt/implicit_filtering.h"

#include <cassert>
#include <cmath>

namespace treevqa {

ImplicitFiltering::ImplicitFiltering(ImplicitFilteringConfig config)
    : config_(config), h_(config.initialStencil)
{
}

void
ImplicitFiltering::reset(const std::vector<double> &x0)
{
    x_ = x0;
    h_ = config_.initialStencil;
    haveFx_ = false;
    k_ = 0;
    lastEvals_ = 0;
}

double
ImplicitFiltering::step(const Objective &objective)
{
    assert(!x_.empty());
    lastEvals_ = 0;
    const std::size_t n = x_.size();

    if (!haveFx_) {
        fx_ = objective(x_);
        ++lastEvals_;
        haveFx_ = true;
    }
    if (converged()) {
        ++k_;
        return fx_;
    }

    // Central-difference gradient on the current stencil; also track
    // the best stencil point (classic implicit-filtering safeguard).
    std::vector<double> gradient(n, 0.0);
    double stencil_best = fx_;
    std::vector<double> stencil_best_x = x_;
    for (std::size_t i = 0; i < n; ++i) {
        std::vector<double> xp = x_, xm = x_;
        xp[i] += h_;
        xm[i] -= h_;
        const double fp = objective(xp);
        const double fm = objective(xm);
        lastEvals_ += 2;
        gradient[i] = (fp - fm) / (2.0 * h_);
        if (fp < stencil_best) {
            stencil_best = fp;
            stencil_best_x = xp;
        }
        if (fm < stencil_best) {
            stencil_best = fm;
            stencil_best_x = xm;
        }
    }

    double gnorm = 0.0;
    for (double g : gradient)
        gnorm += g * g;
    gnorm = std::sqrt(gnorm);

    bool improved = false;
    if (gnorm > 1e-14) {
        // Backtracking line search along -gradient, starting at a step
        // that moves h along the steepest coordinate.
        double step_size = h_ / gnorm * std::sqrt(n);
        for (int probe = 0; probe < config_.lineSearchSteps; ++probe) {
            std::vector<double> trial = x_;
            for (std::size_t i = 0; i < n; ++i)
                trial[i] -= step_size * gradient[i];
            const double ft = objective(trial);
            ++lastEvals_;
            if (ft < fx_) {
                x_ = std::move(trial);
                fx_ = ft;
                improved = true;
                break;
            }
            step_size *= 0.5;
        }
    }
    if (!improved && stencil_best < fx_) {
        // The stencil itself found descent the model missed.
        x_ = std::move(stencil_best_x);
        fx_ = stencil_best;
        improved = true;
    }
    if (!improved) {
        // Stencil failure: refine the filter scale.
        h_ = std::max(config_.minStencil, h_ * config_.shrink);
    }

    ++k_;
    return fx_;
}

std::unique_ptr<IterativeOptimizer>
ImplicitFiltering::cloneConfig() const
{
    return std::make_unique<ImplicitFiltering>(config_);
}

} // namespace treevqa

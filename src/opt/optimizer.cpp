#include "opt/optimizer.h"

namespace treevqa {

double
IterativeOptimizer::step(const Objective &objective)
{
    return stepBatch(
        [&objective](const std::vector<std::vector<double>> &thetas) {
            std::vector<double> losses;
            losses.reserve(thetas.size());
            for (const auto &theta : thetas)
                losses.push_back(objective(theta));
            return losses;
        });
}

} // namespace treevqa

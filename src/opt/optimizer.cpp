#include "opt/optimizer.h"

namespace treevqa {

double
IterativeOptimizer::step(const Objective &objective)
{
    return stepBatch(
        [&objective](const std::vector<std::vector<double>> &thetas) {
            std::vector<double> losses;
            losses.reserve(thetas.size());
            for (const auto &theta : thetas)
                losses.push_back(objective(theta));
            return losses;
        });
}

JsonValue
paramsToJson(const std::vector<double> &values)
{
    JsonValue out = JsonValue::array();
    for (const double v : values)
        out.push_back(JsonValue(v));
    return out;
}

std::vector<double>
paramsFromJson(const JsonValue &array)
{
    std::vector<double> out;
    out.reserve(array.asArray().size());
    for (const JsonValue &v : array.asArray())
        out.push_back(v.asDouble());
    return out;
}

} // namespace treevqa

/**
 * @file
 * Simultaneous Perturbation Stochastic Approximation (SPSA).
 *
 * The paper's primary optimizer (Sections 5.2.2, 7.3): two objective
 * evaluations per iteration regardless of dimension, with the standard
 * Spall gain sequences
 *     a_k = a / (A + k + 1)^alpha,   c_k = c / (k + 1)^gamma,
 * alpha = 0.602, gamma = 0.101, and a Rademacher perturbation direction.
 *
 * The update is
 *     theta_{k+1} = theta_k - a_k * (L(theta+c_k D) - L(theta-c_k D))
 *                            / (2 c_k) * D^{-1},
 * where D^{-1} is the elementwise inverse of the Rademacher vector
 * (equal to D itself for +/-1 entries).
 */

#ifndef TREEVQA_OPT_SPSA_H
#define TREEVQA_OPT_SPSA_H

#include "common/rng.h"
#include "opt/optimizer.h"

namespace treevqa {

/** SPSA hyperparameters. */
struct SpsaConfig
{
    double a = 0.25;      ///< learning-rate numerator
    double c = 0.1;       ///< perturbation-size numerator
    double bigA = 10.0;   ///< stability constant A
    double alpha = 0.602; ///< learning-rate decay exponent
    double gamma = 0.101; ///< perturbation decay exponent
    /** Clip on the per-iteration parameter change (0 disables). */
    double maxStepNorm = 2.0;
};

/** Stateful SPSA stepper. */
class Spsa : public IterativeOptimizer
{
  public:
    Spsa(SpsaConfig config, std::uint64_t seed);

    void reset(const std::vector<double> &x0) override;
    /** One iteration: the +/- perturbed pair goes out as one batch. */
    double stepBatch(const BatchObjective &objective) override;
    const std::vector<double> &params() const override { return x_; }
    int lastStepEvals() const override { return 2; }
    int evalsPerIteration() const override { return 2; }
    int maxEvalsPerStep() const override { return 2; }
    int iteration() const override { return k_; }
    std::string name() const override { return "SPSA"; }
    std::unique_ptr<IterativeOptimizer> cloneConfig() const override;
    /** Dynamic state incl. the private perturbation RNG (resume must
     * replay the exact Rademacher sequence). */
    JsonValue saveState() const override;
    void loadState(const JsonValue &state) override;

    const SpsaConfig &config() const { return config_; }

    /** Current gains (exposed for tests and the Section 8.1 learning-
     * rate discussion). */
    double currentLearningRate() const;
    double currentPerturbation() const;

  private:
    SpsaConfig config_;
    Rng rng_;
    std::uint64_t seed_;
    std::vector<double> x_;
    int k_ = 0;
};

} // namespace treevqa

#endif // TREEVQA_OPT_SPSA_H

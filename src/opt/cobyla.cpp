#include "opt/cobyla.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "linalg/matrix.h"

namespace treevqa {

Cobyla::Cobyla(CobylaConfig config)
    : config_(config), rho_(config.rhoBegin)
{
}

void
Cobyla::reset(const std::vector<double> &x0)
{
    best_ = x0;
    bestValue_ = 0.0;
    rho_ = config_.rhoBegin;
    points_.clear();
    values_.clear();
    simplexBuilt_ = false;
    k_ = 0;
    lastEvals_ = 0;
}

void
Cobyla::buildSimplex(const BatchObjective &objective)
{
    // All n+1 interpolation points are independent: one probe batch.
    const std::size_t n = best_.size();
    points_.clear();
    points_.reserve(n + 1);

    points_.push_back(best_);
    for (std::size_t i = 0; i < n; ++i) {
        std::vector<double> p = best_;
        p[i] += rho_;
        points_.push_back(std::move(p));
    }
    values_ = objective(points_);
    lastEvals_ = static_cast<int>(n + 1);

    const auto best_it = std::min_element(values_.begin(), values_.end());
    bestValue_ = *best_it;
    best_ = points_[static_cast<std::size_t>(
        std::distance(values_.begin(), best_it))];
    simplexBuilt_ = true;
}

std::vector<double>
Cobyla::fitGradient() const
{
    // Linear model L(x) = f0 + g . (x - x0) through the n+1 points:
    // solve (p_i - p_0) . g = f_i - f_0 for i = 1..n.
    const std::size_t n = best_.size();
    Matrix a(n, n);
    std::vector<double> b(n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j)
            a(i, j) = points_[i + 1][j] - points_[0][j];
        b[i] = values_[i + 1] - values_[0];
    }
    return solveLinearSystem(std::move(a), std::move(b));
}

double
Cobyla::stepBatch(const BatchObjective &objective)
{
    assert(!best_.empty());
    lastEvals_ = 0;

    if (!simplexBuilt_) {
        buildSimplex(objective);
        ++k_;
        return bestValue_;
    }
    if (converged()) {
        ++k_;
        return bestValue_;
    }

    std::vector<double> g = fitGradient();
    double gnorm = 0.0;
    for (double gi : g)
        gnorm += gi * gi;
    gnorm = std::sqrt(gnorm);

    if (g.empty() || gnorm < 1e-14) {
        // Degenerate simplex: rebuild at a smaller radius.
        rho_ = std::max(config_.rhoEnd, rho_ * config_.shrink);
        buildSimplex(objective);
        ++k_;
        return bestValue_;
    }

    // Trust-region step of length rho against the linear model.
    const std::size_t n = best_.size();
    std::vector<double> trial = points_[0];
    // Anchor the step at the simplex base point (the model's origin).
    for (std::size_t i = 0; i < n; ++i)
        trial[i] -= rho_ * g[i] / gnorm;
    const double f_trial = objective({trial})[0];
    lastEvals_ = 1;
    ++k_;

    if (f_trial < bestValue_) {
        bestValue_ = f_trial;
        best_ = trial;
    }

    // Replace the worst simplex point with the trial if it improves it;
    // otherwise the linear model failed at this radius -> shrink.
    const auto worst_it = std::max_element(values_.begin(), values_.end());
    const std::size_t worst =
        static_cast<std::size_t>(std::distance(values_.begin(), worst_it));
    if (f_trial < *worst_it) {
        points_[worst] = std::move(trial);
        values_[worst] = f_trial;
        // Keep the base point (index 0) the best vertex so the model is
        // centered where it is most accurate.
        const auto b_it = std::min_element(values_.begin(), values_.end());
        const std::size_t b =
            static_cast<std::size_t>(std::distance(values_.begin(), b_it));
        if (b != 0) {
            std::swap(points_[0], points_[b]);
            std::swap(values_[0], values_[b]);
        }
    } else {
        rho_ = std::max(config_.rhoEnd, rho_ * config_.shrink);
    }
    return bestValue_;
}

std::unique_ptr<IterativeOptimizer>
Cobyla::cloneConfig() const
{
    return std::make_unique<Cobyla>(config_);
}

JsonValue
Cobyla::saveState() const
{
    JsonValue out = JsonValue::object();
    out.set("optimizer", JsonValue(name()));
    out.set("rho", JsonValue(rho_));
    JsonValue points = JsonValue::array();
    for (const auto &p : points_)
        points.push_back(paramsToJson(p));
    out.set("points", std::move(points));
    out.set("values", paramsToJson(values_));
    out.set("best", paramsToJson(best_));
    out.set("bestValue", JsonValue(bestValue_));
    out.set("simplexBuilt", JsonValue(simplexBuilt_));
    out.set("k", JsonValue(static_cast<std::int64_t>(k_)));
    out.set("lastEvals",
            JsonValue(static_cast<std::int64_t>(lastEvals_)));
    return out;
}

void
Cobyla::loadState(const JsonValue &state)
{
    if (state.at("optimizer").asString() != name())
        throw std::runtime_error("COBYLA: checkpoint holds "
                                 + state.at("optimizer").asString()
                                 + " state");
    rho_ = state.at("rho").asDouble();
    points_.clear();
    for (const JsonValue &p : state.at("points").asArray())
        points_.push_back(paramsFromJson(p));
    values_ = paramsFromJson(state.at("values"));
    best_ = paramsFromJson(state.at("best"));
    bestValue_ = state.at("bestValue").asDouble();
    simplexBuilt_ = state.at("simplexBuilt").asBool();
    k_ = static_cast<int>(state.at("k").asInt());
    lastEvals_ = static_cast<int>(state.at("lastEvals").asInt());
}

} // namespace treevqa

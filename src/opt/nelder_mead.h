/**
 * @file
 * Nelder-Mead simplex optimizer.
 *
 * Not used by the paper's headline results, but Section 9.2 stresses
 * that TreeVQA is optimizer-agnostic ("compatible with any optimizer,
 * requiring only cost function evaluations"); shipping a third optimizer
 * demonstrates the plug-and-play interface and gives tests an
 * independent minimizer to cross-check SPSA and COBYLA.
 */

#ifndef TREEVQA_OPT_NELDER_MEAD_H
#define TREEVQA_OPT_NELDER_MEAD_H

#include "opt/optimizer.h"

namespace treevqa {

/** Standard Nelder-Mead coefficients. */
struct NelderMeadConfig
{
    double initialStep = 0.25; ///< simplex edge length around x0
    double alpha = 1.0;        ///< reflection
    double gamma = 2.0;        ///< expansion
    double rho = 0.5;          ///< contraction
    double sigma = 0.5;        ///< shrink
};

/** Stateful Nelder-Mead stepper (one reflect/expand/contract per step). */
class NelderMead : public IterativeOptimizer
{
  public:
    explicit NelderMead(NelderMeadConfig config = NelderMeadConfig{});

    void reset(const std::vector<double> &x0) override;
    /** One iteration; the initial simplex build (n+1 vertices) and a
     * shrink (n vertices) each go out as one probe batch. */
    double stepBatch(const BatchObjective &objective) override;
    const std::vector<double> &params() const override { return best_; }
    int lastStepEvals() const override { return lastEvals_; }
    int evalsPerIteration() const override { return 2; }
    /** Worst case: build n+1 before the first step, else reflect +
     * contract + full shrink = n+2. */
    int maxEvalsPerStep() const override
    {
        return static_cast<int>(best_.size()) + 2;
    }
    int iteration() const override { return k_; }
    std::string name() const override { return "NelderMead"; }
    std::unique_ptr<IterativeOptimizer> cloneConfig() const override;
    JsonValue saveState() const override;
    void loadState(const JsonValue &state) override;

    /** Current simplex spread max_i f_i - min_i f_i. */
    double simplexSpread() const;

  private:
    void buildSimplex(const BatchObjective &objective);
    void sortSimplex();

    NelderMeadConfig config_;
    std::vector<std::vector<double>> points_;
    std::vector<double> values_;
    std::vector<double> best_;
    bool simplexBuilt_ = false;
    int k_ = 0;
    int lastEvals_ = 0;
};

} // namespace treevqa

#endif // TREEVQA_OPT_NELDER_MEAD_H

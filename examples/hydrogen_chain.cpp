/**
 * @file
 * Hydrogen-chain dissociation with the full ab-initio stack: H4 at a
 * family of interatomic spacings, solved jointly by TreeVQA.
 *
 * Demonstrates that the chemistry substrate (STO-3G integrals,
 * Hartree-Fock, Jordan-Wigner) generalizes beyond H2: H4 gives an
 * 8-qubit, ~180-term Hamiltonian per geometry, a regime where the
 * hardware-efficient ansatz and the adaptive tree execution both do
 * real work.
 *
 *   $ ./hydrogen_chain
 */

#include <cstdio>

#include "chem/molecule.h"
#include "circuit/hardware_efficient.h"
#include "core/tree_controller.h"
#include "opt/spsa.h"

using namespace treevqa;

int
main()
{
    // Six chain spacings around the H4 equilibrium.
    std::vector<double> spacings;
    for (int k = 0; k < 6; ++k)
        spacings.push_back(0.75 + 0.08 * k);

    std::vector<VqaTask> tasks;
    std::vector<double> hf_energies;
    std::uint64_t hf_bits = 0;
    for (double d : spacings) {
        const MoleculeProblem mol = buildHChain(4, d);
        VqaTask task;
        task.name = "H4@" + std::to_string(d).substr(0, 4);
        task.hamiltonian = mol.hamiltonian;
        task.initialBits = mol.hartreeFockBits;
        hf_bits = mol.hartreeFockBits;
        tasks.push_back(std::move(task));
        hf_energies.push_back(mol.hartreeFockEnergy);
    }
    solveGroundEnergies(tasks);
    std::printf("H4 chain: %d qubits, %zu Pauli terms per geometry\n\n",
                tasks[0].hamiltonian.numQubits(),
                tasks[0].hamiltonian.numTerms());

    const Ansatz ansatz = makeHardwareEfficientAnsatz(8, 2, hf_bits);
    Spsa optimizer(SpsaConfig{}, 21);

    TreeVqaConfig config;
    config.shotBudget = 1ull << 62;
    config.maxRounds = 260;
    config.seed = 29;
    TreeController controller(tasks, ansatz, optimizer, config);
    const TreeVqaResult result = controller.run();

    std::printf("%-8s %-12s %-12s %-12s %-10s\n", "d (A)", "E_HF",
                "E_TreeVQA", "E_FCI", "fidelity");
    for (std::size_t i = 0; i < tasks.size(); ++i)
        std::printf("%-8.3f %-12.6f %-12.6f %-12.6f %-10.5f\n",
                    spacings[i], hf_energies[i],
                    result.outcomes[i].bestEnergy,
                    tasks[i].groundEnergy,
                    result.outcomes[i].fidelity);

    std::printf("\ncorrelation energy captured at d = %.2f A: "
                "%.4f of %.4f Ha\n",
                spacings[0],
                hf_energies[0] - result.outcomes[0].bestEnergy,
                hf_energies[0] - tasks[0].groundEnergy);
    std::printf("%d splits | %.3e shots across %zu geometries\n",
                result.splitCount,
                static_cast<double>(result.totalShots), tasks.size());
    return 0;
}

/**
 * @file
 * Potential-energy-surface scan of H2 — the paper's motivating
 * application (Section 2.3): many VQA tasks, one per molecular
 * geometry, whose ground energies form the PES.
 *
 * Everything here is ab initio and from this repository: STO-3G
 * integrals, Hartree-Fock, Jordan-Wigner (src/chem), the minimal UCCSD
 * ansatz, and TreeVQA execution. The printed table compares the
 * Hartree-Fock reference, the TreeVQA/VQE energy and the exact (FCI)
 * energy at every bond length.
 *
 *   $ ./pes_scan
 */

#include <cstdio>

#include "chem/molecule.h"
#include "circuit/uccsd_min.h"
#include "core/tree_controller.h"
#include "opt/spsa.h"

using namespace treevqa;

int
main()
{
    // Geometry grid: 9 bond lengths through the equilibrium well.
    std::vector<double> bonds;
    for (int k = 0; k < 9; ++k)
        bonds.push_back(0.50 + 0.15 * k);

    std::vector<VqaTask> tasks;
    std::vector<double> hf_energies;
    for (double bond : bonds) {
        const MoleculeProblem mol = buildH2(bond);
        VqaTask task;
        task.name = "H2@" + std::to_string(bond).substr(0, 4);
        task.hamiltonian = mol.hamiltonian;
        task.initialBits = mol.hartreeFockBits;
        tasks.push_back(std::move(task));
        hf_energies.push_back(mol.hartreeFockEnergy);
    }
    solveGroundEnergies(tasks); // FCI references via Lanczos

    const Ansatz ansatz = makeUccsdMinimalAnsatz();
    SpsaConfig sc;
    sc.a = 0.1;
    sc.maxStepNorm = 0.3;
    Spsa optimizer(sc, 5);

    TreeVqaConfig config;
    config.shotBudget = 1ull << 62;
    config.maxRounds = 200;
    config.seed = 17;
    TreeController controller(tasks, ansatz, optimizer, config);
    const TreeVqaResult result = controller.run();

    std::printf("H2 potential energy surface (STO-3G, Hartree)\n");
    std::printf("%-8s %-12s %-12s %-12s %-10s\n", "R (A)", "E_HF",
                "E_TreeVQA", "E_FCI", "fidelity");
    for (std::size_t i = 0; i < tasks.size(); ++i)
        std::printf("%-8.3f %-12.6f %-12.6f %-12.6f %-10.5f\n",
                    bonds[i], hf_energies[i],
                    result.outcomes[i].bestEnergy,
                    tasks[i].groundEnergy,
                    result.outcomes[i].fidelity);

    // Locate the equilibrium bond from the VQE surface.
    std::size_t min_idx = 0;
    for (std::size_t i = 1; i < tasks.size(); ++i)
        if (result.outcomes[i].bestEnergy
            < result.outcomes[min_idx].bestEnergy)
            min_idx = i;
    std::printf("\nVQE equilibrium bond: %.3f A (literature 0.735 A "
                "for STO-3G FCI)\n", bonds[min_idx]);
    std::printf("total shots: %.3e across %zu geometries "
                "(%d splits)\n",
                static_cast<double>(result.totalShots), tasks.size(),
                result.splitCount);
    return 0;
}

/**
 * @file
 * Potential-energy-surface scan of H2 — the paper's motivating
 * application (Section 2.3), expressed as a declarative sweep on the
 * scenario-orchestration runtime (src/svc/).
 *
 * One ScenarioSpec template sweeps the bond length over 9 geometries;
 * expandScenarios() fans it into 9 independent jobs that the
 * JobScheduler runs over the shared thread pool (concurrency =
 * TREEVQA_NUM_THREADS). Each job is ab initio from this repository:
 * STO-3G integrals, Hartree-Fock, Jordan-Wigner (src/chem), the
 * minimal UCCSD ansatz, with the FCI reference solved per job
 * (computeReference) for the fidelity column. The printed table
 * compares the Hartree-Fock reference, the VQE energy and the exact
 * (FCI) energy at every bond length.
 *
 *   $ ./example_pes_scan
 *
 * The same sweep runs from the command line (plus checkpoint/resume
 * and the JSONL result store) via:
 *
 *   $ treevqa_run pes.json --out pes_out
 */

#include <cstdio>

#include "chem/molecule.h"
#include "svc/job_scheduler.h"

using namespace treevqa;

int
main()
{
    // Geometry grid: 9 bond lengths through the equilibrium well,
    // declared as one swept spec instead of a hand-rolled loop.
    JsonValue bonds = JsonValue::array();
    for (int k = 0; k < 9; ++k)
        bonds.push_back(JsonValue(0.50 + 0.15 * k));

    JsonValue request = JsonValue::object();
    request.set("name", JsonValue("h2-pes"));
    request.set("problem", JsonValue("h2"));
    request.set("ansatz", JsonValue("uccsd_min"));
    JsonValue optimizer = JsonValue::object();
    optimizer.set("name", JsonValue("spsa"));
    optimizer.set("a", JsonValue(0.1));
    optimizer.set("maxStepNorm", JsonValue(0.3));
    request.set("optimizer", std::move(optimizer));
    request.set("maxIterations", JsonValue(std::int64_t{200}));
    request.set("seed", JsonValue(std::uint64_t{17}));
    request.set("computeReference", JsonValue(true));
    JsonValue sweep = JsonValue::object();
    sweep.set("bond", std::move(bonds));
    request.set("sweep", std::move(sweep));

    const std::vector<ScenarioSpec> specs = expandScenarios(request);
    const SweepResult sweep_result = JobScheduler().run(specs);

    std::printf("H2 potential energy surface (STO-3G, Hartree)\n");
    std::printf("%-8s %-12s %-12s %-12s %-10s\n", "R (A)", "E_HF",
                "E_VQE", "E_FCI", "fidelity");
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const JobResult &job = sweep_result.jobs[i];
        // Hartree-Fock column from the same ab initio pipeline the
        // job's Hamiltonian came from.
        const double hf =
            buildH2(specs[i].bond).hartreeFockEnergy;
        std::printf("%-8.3f %-12.6f %-12.6f %-12.6f %-10.5f\n",
                    specs[i].bond, hf, job.finalEnergy,
                    job.groundEnergy, job.fidelity);
    }

    // Locate the equilibrium bond from the VQE surface.
    std::size_t min_idx = 0;
    for (std::size_t i = 1; i < sweep_result.jobs.size(); ++i)
        if (sweep_result.jobs[i].finalEnergy
            < sweep_result.jobs[min_idx].finalEnergy)
            min_idx = i;
    std::printf("\nVQE equilibrium bond: %.3f A (literature 0.735 A "
                "for STO-3G FCI)\n", specs[min_idx].bond);

    std::uint64_t total_shots = 0;
    for (const JobResult &job : sweep_result.jobs)
        total_shots += job.shotsUsed;
    std::printf("total shots: %.3e across %zu geometries\n",
                static_cast<double>(total_shots), specs.size());
    return 0;
}

/**
 * @file
 * Smart-grid partitioning with QAOA (paper Sections 7.1 and 8.8): the
 * IEEE 14-bus system under ten load scenarios, each a weighted MaxCut
 * instance; TreeVQA solves all scenarios jointly with the multi-angle
 * QAOA ansatz and a Red-QAOA-style pooled initialization.
 *
 *   $ ./smart_grid_qaoa
 */

#include <cstdio>

#include "circuit/ma_qaoa.h"
#include "core/tree_controller.h"
#include "ham/ieee14.h"
#include "init/warm_start.h"
#include "opt/spsa.h"

using namespace treevqa;

int
main()
{
    // Ten operating points between 80% and 120% of nominal load.
    const auto scenarios = ieee14LoadFamily(0.8, 1.2, 10);
    std::printf("IEEE 14-bus MaxCut under load scaling "
                "(%d buses, %zu branches, edge-weight variance "
                "%.4f)\n\n",
                scenarios[0].numNodes, scenarios[0].edges.size(),
                edgeWeightVariance(scenarios));

    std::vector<PauliSum> hams;
    for (const auto &g : scenarios)
        hams.push_back(maxcutHamiltonian(g));
    auto tasks = makeTasks("load", hams, 0);
    for (std::size_t i = 0; i < tasks.size(); ++i)
        tasks[i].groundEnergy = -scenarios[i].maxCutBruteForce();

    // ma-QAOA over the shared topology; pooled warm start.
    const WeightedGraph pooled = meanGraph(scenarios);
    const Ansatz ansatz = makeMaQaoaAnsatz(
        pooled.numNodes, maxcutClauses(pooled), /*layers=*/2, true);
    const auto init = pooledQaoaInit(scenarios, 2, 12);
    const Ansatz warm(ansatz.circuit().withParamOffsets(init), 0);

    SpsaConfig sc;
    sc.a = 0.15;
    sc.maxStepNorm = 1.0;
    Spsa optimizer(sc, 3);

    TreeVqaConfig config;
    config.shotBudget = 1ull << 62;
    config.maxRounds = 220;
    config.seed = 14;
    TreeController controller(tasks, warm, optimizer, config);
    const TreeVqaResult result = controller.run();

    std::printf("%-10s %-12s %-12s %-10s\n", "scenario",
                "QAOA energy", "optimal cut", "ratio");
    double mean_ratio = 0.0;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        const double qaoa_cut = -result.outcomes[i].bestEnergy;
        const double best_cut = -tasks[i].groundEnergy;
        const double ratio = qaoa_cut / best_cut;
        mean_ratio += ratio / tasks.size();
        std::printf("%-10zu %-12.4f %-12.4f %-10.4f\n", i, qaoa_cut,
                    best_cut, ratio);
    }
    std::printf("\nmean approximation ratio %.4f | %d splits | "
                "%.3e total shots\n",
                mean_ratio, result.splitCount,
                static_cast<double>(result.totalShots));
    return 0;
}

/**
 * @file
 * Condensed-matter use case (paper Section 2.3): mapping the ground-
 * state energy landscape of the transverse-field Ising chain across
 * its quantum phase transition at h = J.
 *
 * One VQA task per field value; TreeVQA shares execution across the
 * family, and the resulting landscape's curvature peak locates the
 * critical region. Also demonstrates the dynamic-monitoring claim of
 * Section 3: the execution tree tends to branch *around* the
 * transition, where ground states change character fastest.
 *
 *   $ ./phase_transition
 */

#include <cstdio>

#include "circuit/hardware_efficient.h"
#include "core/tree_controller.h"
#include "ham/spin_chains.h"
#include "opt/spsa.h"

using namespace treevqa;

int
main()
{
    const int sites = 8;
    const int count = 12;
    const double h_lo = 0.4, h_hi = 1.6;

    std::vector<VqaTask> tasks =
        makeTasks("tfim", tfimFamily(sites, h_lo, h_hi, count), 0);
    solveGroundEnergies(tasks);

    const Ansatz ansatz = makeHardwareEfficientAnsatz(sites, 2, 0);
    Spsa optimizer(SpsaConfig{}, 9);

    TreeVqaConfig config;
    config.shotBudget = 1ull << 62;
    config.maxRounds = 320;
    config.seed = 23;
    TreeController controller(tasks, ansatz, optimizer, config);
    const TreeVqaResult result = controller.run();

    std::printf("TFIM energy landscape, %d sites (J = 1)\n", sites);
    std::printf("%-8s %-12s %-12s %-10s %-8s\n", "h", "E_VQE",
                "E_exact", "fidelity", "cluster");
    std::vector<double> energies;
    std::vector<double> fields;
    for (int i = 0; i < count; ++i) {
        const double h =
            h_lo + (h_hi - h_lo) * i / (count - 1);
        fields.push_back(h);
        energies.push_back(result.outcomes[i].bestEnergy);
        std::printf("%-8.3f %-12.5f %-12.5f %-10.5f %-8d\n", h,
                    result.outcomes[i].bestEnergy,
                    tasks[i].groundEnergy, result.outcomes[i].fidelity,
                    result.outcomes[i].bestClusterId);
    }

    // Second difference of E(h) peaks near the critical point h = J.
    double peak = 0.0, peak_h = 0.0;
    for (int i = 1; i + 1 < count; ++i) {
        const double dh = fields[1] - fields[0];
        const double curvature = std::abs(
            (energies[i + 1] - 2 * energies[i] + energies[i - 1])
            / (dh * dh));
        if (curvature > peak) {
            peak = curvature;
            peak_h = fields[i];
        }
    }
    std::printf("\nlandscape curvature peaks at h = %.3f "
                "(thermodynamic-limit critical point: h = 1)\n",
                peak_h);
    std::printf("%d splits across %zu final clusters | %.3e shots\n",
                result.splitCount, result.finalClusterCount,
                static_cast<double>(result.totalShots));
    return 0;
}

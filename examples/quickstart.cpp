/**
 * @file
 * Quickstart: solve a family of related VQA tasks jointly with TreeVQA
 * and compare against conventional per-task VQE.
 *
 * The application is a transverse-field Ising chain evaluated at eight
 * field strengths — eight Hamiltonians whose ground states evolve
 * smoothly with the field, exactly the similarity structure TreeVQA
 * exploits.
 *
 *   $ ./quickstart
 */

#include <cstdio>

#include "circuit/hardware_efficient.h"
#include "core/baseline.h"
#include "core/tree_controller.h"
#include "ham/spin_chains.h"
#include "opt/spsa.h"

using namespace treevqa;

int
main()
{
    // 1. The application: one VQA task per field strength.
    const int sites = 8;
    std::vector<VqaTask> tasks =
        makeTasks("tfim", tfimFamily(sites, 0.6, 1.4, 8), 0);
    solveGroundEnergies(tasks); // exact references for fidelity

    // 2. A shared ansatz and optimizer prototype.
    const Ansatz ansatz = makeHardwareEfficientAnsatz(sites, 2, 0);
    Spsa optimizer(SpsaConfig{}, /*seed=*/42);

    // 3. TreeVQA: all eight tasks start in one cluster and branch as
    //    their optimizations diverge.
    TreeVqaConfig config;
    config.shotBudget = 2'000'000'000ull; // global S_max
    config.maxRounds = 300;
    config.seed = 7;
    TreeController controller(tasks, ansatz, optimizer, config);
    const TreeVqaResult tree = controller.run();

    std::printf("TreeVQA: %d rounds, %d splits, %zu final clusters\n",
                tree.rounds, tree.splitCount, tree.finalClusterCount);
    for (std::size_t i = 0; i < tree.outcomes.size(); ++i)
        std::printf("  %-10s E = %9.5f  fidelity = %.4f  "
                    "(cluster %d)\n",
                    tasks[i].name.c_str(), tree.outcomes[i].bestEnergy,
                    tree.outcomes[i].fidelity,
                    tree.outcomes[i].bestClusterId);

    // 4. The conventional baseline under the same budget.
    BaselineConfig base_config;
    base_config.shotBudget = config.shotBudget;
    base_config.maxIterationsPerTask = 300;
    base_config.seed = 8;
    const BaselineResult base =
        runBaseline(tasks, ansatz, optimizer, base_config);

    // 5. Compare shots-to-fidelity.
    for (double threshold : {0.80, 0.90}) {
        const auto ts =
            shotsToReachFidelity(tree.trace, tasks, threshold);
        const auto bs =
            shotsToReachFidelity(base.trace, tasks, threshold);
        if (ts && bs
            && bs != std::numeric_limits<std::uint64_t>::max()
            && ts != std::numeric_limits<std::uint64_t>::max())
            std::printf("fidelity %.2f: TreeVQA %.2e shots, baseline "
                        "%.2e shots -> %.1fx savings\n",
                        threshold, static_cast<double>(ts),
                        static_cast<double>(bs),
                        static_cast<double>(bs)
                            / static_cast<double>(ts));
    }
    return 0;
}

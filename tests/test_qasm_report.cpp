/**
 * @file
 * Tests for OpenQASM export and run reporting.
 */

#include <gtest/gtest.h>

#include "circuit/hardware_efficient.h"
#include "circuit/qasm_export.h"
#include "core/report.h"
#include "core/tree_controller.h"
#include "ham/spin_chains.h"
#include "opt/spsa.h"

namespace treevqa {
namespace {

TEST(Qasm, HeaderAndRegister)
{
    Circuit c(3);
    c.h(0);
    const std::string qasm = toQasm(c, {});
    EXPECT_NE(qasm.find("OPENQASM 2.0;"), std::string::npos);
    EXPECT_NE(qasm.find("qreg q[3];"), std::string::npos);
    EXPECT_NE(qasm.find("h q[0];"), std::string::npos);
}

TEST(Qasm, BindsParameters)
{
    Circuit c(1);
    const int p = c.addParam();
    c.ryParam(0, p, 2.0);
    const std::string qasm = toQasm(c, {0.25});
    EXPECT_NE(qasm.find("ry(0.5) q[0];"), std::string::npos);
}

TEST(Qasm, RzzExpandsToCxRzCx)
{
    Circuit c(2);
    c.rzz(0, 1, 0.7);
    const std::string qasm = toQasm(c, {});
    EXPECT_NE(qasm.find("cx q[0],q[1];"), std::string::npos);
    EXPECT_NE(qasm.find("rz(0.69999999999999996) q[1];"),
              std::string::npos);
    // Two CX total.
    std::size_t count = 0, pos = 0;
    while ((pos = qasm.find("cx ", pos)) != std::string::npos) {
        ++count;
        pos += 3;
    }
    EXPECT_EQ(count, 2u);
}

TEST(Qasm, AnsatzEmitsInitialBits)
{
    const Ansatz a = makeHardwareEfficientAnsatz(3, 1, 0b101);
    const std::string qasm =
        toQasm(a, std::vector<double>(a.numParams(), 0.0));
    EXPECT_NE(qasm.find("x q[0];"), std::string::npos);
    EXPECT_NE(qasm.find("x q[2];"), std::string::npos);
    EXPECT_EQ(qasm.find("x q[1];"), std::string::npos);
}

TEST(Qasm, AllGateKindsRender)
{
    Circuit c(2);
    c.h(0);
    c.x(1);
    c.s(0);
    c.sdg(1);
    c.cx(0, 1);
    c.cz(0, 1);
    c.rx(0, 0.1);
    c.ry(1, 0.2);
    c.rz(0, 0.3);
    c.rzz(0, 1, 0.4);
    const std::string qasm = toQasm(c, {});
    for (const char *token :
         {"h ", "x ", "s ", "sdg ", "cx ", "cz ", "rx(", "ry(",
          "rz("})
        EXPECT_NE(qasm.find(token), std::string::npos) << token;
}

TEST(Report, SummaryAndJsonShapes)
{
    auto tasks = makeTasks("t", tfimFamily(3, 0.8, 1.2, 3), 0);
    solveGroundEnergies(tasks);
    const Ansatz ansatz = makeHardwareEfficientAnsatz(3, 1, 0);
    Spsa proto(SpsaConfig{}, 1);
    TreeVqaConfig cfg;
    cfg.shotBudget = 1ull << 62;
    cfg.maxRounds = 30;
    TreeController controller(tasks, ansatz, proto, cfg);
    const TreeVqaResult res = controller.run();

    const std::string summary = summarize(res, tasks);
    EXPECT_NE(summary.find("TreeVQA run:"), std::string::npos);
    EXPECT_NE(summary.find("t[0]"), std::string::npos);

    const std::string json = toJson(res, tasks);
    EXPECT_NE(json.find("\"method\":\"treevqa\""), std::string::npos);
    EXPECT_NE(json.find("\"tasks\":["), std::string::npos);
    EXPECT_NE(json.find("\"trace\":["), std::string::npos);
    // Balanced braces/brackets (cheap well-formedness check).
    long depth = 0;
    for (char ch : json) {
        if (ch == '{' || ch == '[')
            ++depth;
        if (ch == '}' || ch == ']')
            --depth;
        EXPECT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}

TEST(Report, JsonWithoutTrace)
{
    std::vector<VqaTask> tasks =
        makeTasks("t", tfimFamily(3, 1.0, 1.0, 1), 0);
    BaselineResult res;
    res.outcomes.resize(1);
    res.outcomes[0].bestEnergy = -1.5;
    const std::string json = toJson(res, tasks, false);
    EXPECT_EQ(json.find("\"trace\""), std::string::npos);
    EXPECT_NE(json.find("\"method\":\"baseline\""), std::string::npos);
    // NaN fidelity renders as null.
    EXPECT_NE(json.find("\"fidelity\":null"), std::string::npos);
}

} // namespace
} // namespace treevqa

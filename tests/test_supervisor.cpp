/**
 * @file
 * Tests for the self-healing fleet layer (src/dist/supervisor.h,
 * src/dist/health.h): spawn/reap/restart of worker children, the
 * crash-loop circuit breaker, the SIGTERM→SIGKILL shutdown cascade,
 * the frozen-progress hung-job watchdog with its budget-counted
 * timedOut records, and the machine-readable health surface. Worker
 * children are shell stubs here — the end-to-end drills with real
 * treevqa_worker fleets live in tools/treevqa_chaos.cpp and CI.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <stdexcept>
#include <thread>

#include "common/file_util.h"
#include "dist/health.h"
#include "dist/store_merge.h"
#include "dist/supervisor.h"
#include "dist/work_claim.h"
#include "svc/result_store.h"
#include "svc/scenario_runner.h"
#include "svc/scenario_spec.h"
#include "svc/sweep_dir.h"

namespace treevqa {
namespace {

std::filesystem::path
scratchDir(const std::string &name)
{
    const std::filesystem::path dir =
        std::filesystem::path(::testing::TempDir()) / ("sup_" + name);
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

/** A tiny, fast scenario (4-qubit TFIM, 1-layer HEA, SPSA). */
ScenarioSpec
tinySpec(const std::string &name, double field)
{
    ScenarioSpec spec;
    spec.name = name;
    spec.problem = "tfim";
    spec.size = 4;
    spec.field = field;
    spec.ansatz = "hea";
    spec.layers = 1;
    spec.engine.shotsPerTerm = 256;
    spec.maxIterations = 12;
    spec.seed = 99;
    spec.checkpointInterval = 4;
    return spec;
}

/** Seed `<dir>/sweep.json` with one tiny job; returns its spec. */
ScenarioSpec
seedSweep(const std::string &dir, const std::string &name)
{
    const ScenarioSpec spec = tinySpec(name, 1.0);
    writeTextFileAtomic(sweepSpecPath(dir),
                        scenarioToJson(spec).dump(2) + "\n");
    return spec;
}

/** Fast supervise-loop defaults for shell-stub fleets. */
SupervisorOptions
stubOptions(const std::string &dir,
            const std::vector<std::string> &command)
{
    SupervisorOptions options;
    options.sweepDir = dir;
    options.workerCommand = command;
    options.workers = 1;
    options.restartBackoffMs = 1;
    options.pollMs = 5;
    options.gracePeriodMs = 500;
    options.mergeOnDrain = false;
    return options;
}

std::int64_t
elapsedMsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - start)
        .count();
}

// ----------------------------------------------------------- validation

TEST(Supervisor, RejectsBadOptions)
{
    SupervisorOptions no_dir;
    no_dir.workerCommand = {"/bin/true"};
    EXPECT_THROW(Supervisor{no_dir}, std::invalid_argument);

    SupervisorOptions no_command;
    no_command.sweepDir = scratchDir("no_command").string();
    EXPECT_THROW(Supervisor{no_command}, std::invalid_argument);

    SupervisorOptions bad_prefix;
    bad_prefix.sweepDir = scratchDir("bad_prefix").string();
    bad_prefix.workerCommand = {"/bin/true"};
    bad_prefix.idPrefix = "no/slashes";
    EXPECT_THROW(Supervisor{bad_prefix}, std::invalid_argument);

    SupervisorOptions zero_workers;
    zero_workers.sweepDir = scratchDir("zero_workers").string();
    zero_workers.workerCommand = {"/bin/true"};
    zero_workers.workers = 0;
    EXPECT_THROW(Supervisor{zero_workers}, std::invalid_argument);
}

// ------------------------------------------------------- supervise loop

TEST(Supervisor, AlreadyDrainedSweepStopsWithoutSpawning)
{
    const auto dir = scratchDir("drained");
    const ScenarioSpec spec = seedSweep(dir.string(), "done_job");
    const JobResult done = runScenario(spec);
    ResultStore(sweepStorePath(dir.string())).append(done);

    Supervisor supervisor(stubOptions(dir.string(), {"/bin/true"}));
    const SupervisorReport report = supervisor.run();
    EXPECT_TRUE(report.drained);
    EXPECT_FALSE(report.stoppedEarly);
    EXPECT_EQ(report.spawns, 0u);
    EXPECT_EQ(report.crashes, 0u);
    // The health surface reflects the run even without children.
    EXPECT_TRUE(std::filesystem::exists(
        sweepHealthPath(dir.string(), "supervisor")));
}

TEST(Supervisor, CrashLoopRetiresEverySlotAndGivesUp)
{
    const auto dir = scratchDir("crash_loop");
    seedSweep(dir.string(), "never_runs");

    // Every child life fails instantly; the circuit breaker must
    // retire both slots after 2 abnormal exits each instead of
    // restarting forever, and the supervisor gives up undrained.
    SupervisorOptions options = stubOptions(
        dir.string(), {"/bin/sh", "-c", "exit 3"});
    options.workers = 2;
    options.crashLoopBudget = 2;
    options.crashLoopWindowMs = 60000;
    Supervisor supervisor(std::move(options));
    const SupervisorReport report = supervisor.run();

    EXPECT_FALSE(report.drained);
    EXPECT_TRUE(report.stoppedEarly);
    ASSERT_EQ(report.retiredSlots.size(), 2u);
    EXPECT_NE(report.retiredSlots[0].find("sup-w0"), std::string::npos);
    EXPECT_NE(report.retiredSlots[1].find("sup-w1"), std::string::npos);
    EXPECT_GE(report.crashes, 4u);
    EXPECT_GE(report.spawns, 4u);
}

TEST(Supervisor, ShutdownCascadeEscalatesToSigkill)
{
    const auto dir = scratchDir("cascade");
    seedSweep(dir.string(), "never_drains");

    // The child ignores SIGTERM, so the cascade must SIGKILL it after
    // the grace window — but not sooner.
    SupervisorOptions options = stubOptions(
        dir.string(),
        {"/bin/sh", "-c",
         "trap '' TERM; while :; do sleep 0.01; done"});
    options.gracePeriodMs = 200;
    Supervisor supervisor(std::move(options));

    std::thread stopper([&supervisor] {
        std::this_thread::sleep_for(std::chrono::milliseconds(150));
        supervisor.requestStop();
    });
    const auto t0 = std::chrono::steady_clock::now();
    const SupervisorReport report = supervisor.run();
    stopper.join();

    EXPECT_TRUE(report.stoppedEarly);
    EXPECT_FALSE(report.drained);
    EXPECT_GE(report.spawns, 1u);
    // Stop at ~150ms + full 200ms grace burned by the stubborn child.
    EXPECT_GE(elapsedMsSince(t0), 300);
    // run() returned only after the straggler was reaped — no slot
    // still believes it has a live child.
    EXPECT_TRUE(std::filesystem::exists(
        sweepHealthPath(dir.string(), "supervisor")));
}

TEST(Supervisor, CooperativeChildrenExitWithinTheGraceWindow)
{
    const auto dir = scratchDir("cascade_soft");
    seedSweep(dir.string(), "never_drains");

    SupervisorOptions options = stubOptions(
        dir.string(),
        {"/bin/sh", "-c",
         "trap 'exit 0' TERM; while :; do sleep 0.01; done"});
    options.gracePeriodMs = 5000; // never reached by a polite child
    Supervisor supervisor(std::move(options));

    std::thread stopper([&supervisor] {
        std::this_thread::sleep_for(std::chrono::milliseconds(150));
        supervisor.requestStop();
    });
    const auto t0 = std::chrono::steady_clock::now();
    const SupervisorReport report = supervisor.run();
    stopper.join();

    EXPECT_TRUE(report.stoppedEarly);
    // SIGTERM sufficed: nowhere near the 5 s escalation deadline.
    EXPECT_LT(elapsedMsSince(t0), 3000);
}

TEST(Supervisor, WatchdogKillsHungClaimAndRecordsTimeout)
{
    const auto dir = scratchDir("watchdog");
    const ScenarioSpec spec = seedSweep(dir.string(), "hung_job");
    const std::string fp = scenarioFingerprint(spec);

    // Simulate a wedged worker: its claim exists under the slot's id
    // with a frozen progress stamp (never renewed with progress), while
    // the child process itself — a sleeper stub — stays alive. The
    // live-lease/dead-work signature the watchdog exists to catch.
    std::filesystem::create_directories(sweepClaimDir(dir.string()));
    auto claim = WorkClaim::tryAcquire(sweepClaimDir(dir.string()), fp,
                                       "sup-w0", 600000);
    ASSERT_TRUE(claim.has_value());

    SupervisorOptions options = stubOptions(
        dir.string(), {"/bin/sh", "-c", "while :; do sleep 0.01; done"});
    options.jobTimeoutMs = 120;
    // One timedOut attempt exhausts the budget, so the job resolves
    // as poisoned and the supervisor drains right after the kill.
    options.maxJobAttempts = 1;
    Supervisor supervisor(std::move(options));
    const SupervisorReport report = supervisor.run();

    EXPECT_TRUE(report.drained);
    EXPECT_EQ(report.watchdogKills, 1u);
    EXPECT_EQ(report.timeoutRecords, 1u);
    // The dead child's claim was removed so the job is retryable
    // immediately (here: already resolved).
    EXPECT_FALSE(
        WorkClaim::peek(sweepClaimDir(dir.string()), fp).has_value());

    const std::vector<JobResult> records =
        loadMergedRecords(dir.string());
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].fingerprint, fp);
    EXPECT_TRUE(records[0].failed);
    EXPECT_TRUE(records[0].timedOut);
    EXPECT_EQ(records[0].attempts, 1);
    EXPECT_NE(records[0].errorMessage.find("watchdog"),
              std::string::npos);
}

// -------------------------------------------------------------- health

TEST(Health, SnapshotRoundTripsAndAggregates)
{
    const auto dir = scratchDir("health");

    WorkerHealth w;
    w.id = "w1";
    w.pid = 4242;
    w.state = "running";
    w.startedMs = 1000;
    w.jobFingerprint = "FP";
    w.jobName = "job0";
    w.jobProgress = 7;
    w.jobAttempt = 2;
    w.jobsCompleted = 3;
    w.jobsFailed = 1;
    w.jobsTimedOut = 1;
    ASSERT_TRUE(writeHealthSnapshot(dir.string(), w));

    WorkerHealth idle;
    idle.id = "w2";
    idle.pid = 4243;
    idle.state = "idle";
    idle.jobsCompleted = 2;
    ASSERT_TRUE(writeHealthSnapshot(dir.string(), idle));

    // A torn snapshot must be skipped, not kill the aggregation.
    std::filesystem::create_directories(sweepHealthDir(dir.string()));
    writeTextFileAtomic(sweepHealthPath(dir.string(), "torn"),
                        "{\"id\": \"to");

    const std::vector<WorkerHealth> snapshots =
        readHealthSnapshots(dir.string());
    ASSERT_EQ(snapshots.size(), 2u);
    EXPECT_EQ(snapshots[0].id, "w1"); // id-sorted
    EXPECT_EQ(snapshots[0].state, "running");
    EXPECT_EQ(snapshots[0].jobName, "job0");
    EXPECT_EQ(snapshots[0].jobProgress, 7);
    EXPECT_EQ(snapshots[0].jobAttempt, 2);
    EXPECT_GT(snapshots[0].updatedMs, 0); // stamped by the writer
    EXPECT_GE(snapshots[0].rssKb, -1);
    EXPECT_EQ(snapshots[1].id, "w2");

    const JsonValue doc =
        aggregateHealthJson(snapshots, snapshots[0].updatedMs + 50);
    EXPECT_EQ(doc.at("processes").asInt(), 2);
    EXPECT_EQ(doc.at("states").at("running").asInt(), 1);
    EXPECT_EQ(doc.at("states").at("idle").asInt(), 1);
    EXPECT_EQ(doc.at("jobsCompleted").asInt(), 5);
    EXPECT_EQ(doc.at("jobsFailed").asInt(), 1);
    EXPECT_EQ(doc.at("jobsTimedOut").asInt(), 1);
    EXPECT_EQ(doc.at("workers").asArray().size(), 2u);
    EXPECT_EQ(doc.at("workers").asArray()[0].at("staleMs").asInt(), 50);

    // And the JSON round-trips field-for-field.
    const WorkerHealth back = healthFromJson(healthToJson(w));
    EXPECT_EQ(back.id, w.id);
    EXPECT_EQ(back.pid, w.pid);
    EXPECT_EQ(back.role, w.role);
    EXPECT_EQ(back.state, w.state);
    EXPECT_EQ(back.jobFingerprint, w.jobFingerprint);
    EXPECT_EQ(back.jobProgress, w.jobProgress);
    EXPECT_EQ(back.jobAttempt, w.jobAttempt);
    EXPECT_EQ(back.jobsCompleted, w.jobsCompleted);
    EXPECT_EQ(back.jobsTimedOut, w.jobsTimedOut);
}

TEST(Health, SnapshotWriteFailureIsToleratedNotThrown)
{
    WorkerHealth h;
    h.id = "w";
    // An unwritable sweep root: writeHealthSnapshot must report false,
    // never throw — observability cannot take down the worker.
    EXPECT_FALSE(
        writeHealthSnapshot("/proc/definitely/not/writable", h));
}

} // namespace
} // namespace treevqa

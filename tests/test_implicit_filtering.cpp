/**
 * @file
 * Tests for the Implicit Filtering optimizer (the Section 9.2
 * extension) including its use inside TreeVQA.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/hardware_efficient.h"
#include "common/rng.h"
#include "core/tree_controller.h"
#include "ham/spin_chains.h"
#include "opt/implicit_filtering.h"

namespace treevqa {
namespace {

double
quadratic(const std::vector<double> &x)
{
    double s = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i)
        s += (x[i] - 1.0) * (x[i] - 1.0);
    return s;
}

TEST(ImplicitFiltering, ConvergesOnQuadratic)
{
    ImplicitFiltering opt;
    opt.reset(std::vector<double>(4, 0.0));
    double loss = 1e18;
    for (int i = 0; i < 120; ++i)
        loss = opt.step(quadratic);
    EXPECT_LT(loss, 1e-3);
}

TEST(ImplicitFiltering, StencilShrinksOnNoiseFloor)
{
    // A noisy objective stalls descent at the noise scale: the stencil
    // must refine (the cluster-granularity signal of Section 9.2).
    Rng noise(1);
    const Objective f = [&](const std::vector<double> &x) {
        return quadratic(x) + noise.normal(0.0, 0.05);
    };
    ImplicitFiltering opt;
    opt.reset(std::vector<double>(3, 0.0));
    const double h0 = opt.stencilWidth();
    for (int i = 0; i < 200; ++i)
        opt.step(f);
    EXPECT_LT(opt.stencilWidth(), h0);
}

TEST(ImplicitFiltering, EvalAccounting)
{
    ImplicitFiltering opt;
    opt.reset({0.0, 0.0});
    int calls = 0;
    const Objective f = [&](const std::vector<double> &x) {
        ++calls;
        return quadratic(x);
    };
    opt.step(f);
    // First step: f(x0) + 2n stencil + <= lineSearchSteps probes.
    EXPECT_GE(calls, 5);
    EXPECT_LE(calls, 8);
    EXPECT_EQ(opt.lastStepEvals(), calls);
}

TEST(ImplicitFiltering, ConvergedFlagAtMinStencil)
{
    ImplicitFilteringConfig cfg;
    cfg.initialStencil = 0.1;
    cfg.minStencil = 0.05;
    ImplicitFiltering opt(cfg);
    opt.reset({0.0});
    const Objective flat = [](const std::vector<double> &) {
        return 1.0;
    };
    for (int i = 0; i < 30 && !opt.converged(); ++i)
        opt.step(flat);
    EXPECT_TRUE(opt.converged());
}

TEST(ImplicitFiltering, CloneConfigIndependent)
{
    ImplicitFiltering opt;
    auto clone = opt.cloneConfig();
    EXPECT_EQ(clone->name(), "ImplicitFiltering");
    clone->reset({1.0, 2.0});
    EXPECT_EQ(clone->params().size(), 2u);
}

TEST(ImplicitFiltering, PlugsIntoTreeVqa)
{
    // Section 9.2's claim: TreeVQA works with any optimizer that only
    // needs objective values.
    auto tasks = makeTasks("t", tfimFamily(4, 0.8, 1.2, 4), 0);
    solveGroundEnergies(tasks);
    const Ansatz ansatz = makeHardwareEfficientAnsatz(4, 1, 0);
    ImplicitFiltering proto;

    TreeVqaConfig cfg;
    cfg.shotBudget = 1ull << 62;
    cfg.maxRounds = 60;
    cfg.seed = 19;
    TreeController controller(tasks, ansatz, proto, cfg);
    const TreeVqaResult res = controller.run();
    ASSERT_EQ(res.outcomes.size(), 4u);
    for (const auto &o : res.outcomes) {
        EXPECT_TRUE(std::isfinite(o.bestEnergy));
        EXPECT_GT(o.fidelity, 0.2);
    }
}

} // namespace
} // namespace treevqa

/**
 * @file
 * Tests for the classical initializers: CAFQA-like Clifford search and
 * Red-QAOA-like pooled QAOA initialization.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/hardware_efficient.h"
#include "circuit/ma_qaoa.h"
#include "ham/ieee14.h"
#include "ham/spin_chains.h"
#include "init/cafqa.h"
#include "init/warm_start.h"
#include "sim/expectation.h"

namespace treevqa {
namespace {

TEST(Cafqa, FindsGroundBasisStateOfDiagonalHamiltonian)
{
    // Diagonal H: ground state is a computational basis state, which a
    // Clifford point of the HEA can prepare exactly.
    PauliSum h(3);
    PauliString z0(3), z1(3), z2(3);
    z0.setOp(0, 'Z');
    z1.setOp(1, 'Z');
    z2.setOp(2, 'Z');
    h.add(1.0, z0);   // favors qubit 0 = 1
    h.add(-2.0, z1);  // favors qubit 1 = 0
    h.add(0.5, z2);   // favors qubit 2 = 1
    // Ground energy: -1 - 2 - 0.5 = -3.5.

    const Ansatz ansatz = makeHardwareEfficientAnsatz(3, 1, 0);
    Rng rng(1);
    const CafqaResult res = cafqaSearch(h, ansatz, rng, 4, 3);
    EXPECT_NEAR(res.energy, -3.5, 1e-9);
    EXPECT_GT(res.evaluations, 0);
}

TEST(Cafqa, ParamsAreCliffordAngles)
{
    PauliSum h(2);
    PauliString zz(2);
    zz.setOp(0, 'Z');
    zz.setOp(1, 'Z');
    h.add(-1.0, zz);
    const Ansatz ansatz = makeHardwareEfficientAnsatz(2, 1, 0);
    Rng rng(2);
    const CafqaResult res = cafqaSearch(h, ansatz, rng, 2, 2);
    for (double p : res.params) {
        const double q = std::fmod(p, M_PI_2);
        EXPECT_NEAR(std::min(q, M_PI_2 - q), 0.0, 1e-12);
    }
}

TEST(Cafqa, EnergyMatchesEvaluation)
{
    const PauliSum h = transverseFieldIsing(3, 1.0, 0.6);
    const Ansatz ansatz = makeHardwareEfficientAnsatz(3, 1, 0);
    Rng rng(3);
    const CafqaResult res = cafqaSearch(h, ansatz, rng, 2, 2);
    const Statevector s = ansatz.prepare(res.params);
    EXPECT_NEAR(expectation(s, h), res.energy, 1e-10);
}

TEST(Cafqa, NeverWorseThanZeroPoint)
{
    const PauliSum h = xxzChain(4, 1.0, 0.8);
    const Ansatz ansatz = makeHardwareEfficientAnsatz(4, 2, 0b0101);
    Rng rng(4);
    const CafqaResult res = cafqaSearch(h, ansatz, rng, 2, 2);
    const Statevector zero_state = ansatz.prepare(
        std::vector<double>(ansatz.numParams(), 0.0));
    EXPECT_LE(res.energy, expectation(zero_state, h) + 1e-10);
}

TEST(WarmStart, MeanGraphAveragesWeights)
{
    WeightedGraph a, b;
    a.numNodes = b.numNodes = 2;
    a.edges = {{0, 1, 1.0}};
    b.edges = {{0, 1, 3.0}};
    const WeightedGraph m = meanGraph({a, b});
    EXPECT_DOUBLE_EQ(m.edges[0].weight, 2.0);
}

TEST(WarmStart, PooledInitShapeMatchesMaQaoa)
{
    const auto family = ieee14LoadFamily(0.9, 1.1, 4);
    const int layers = 1;
    const auto init = pooledQaoaInit(family, layers, 6);
    const Ansatz ma = makeMaQaoaAnsatz(
        family[0].numNodes, maxcutClauses(family[0]), layers, true);
    EXPECT_EQ(static_cast<int>(init.size()), ma.numParams());
}

TEST(WarmStart, PooledInitBeatsZeroAngles)
{
    // The pooled angles must score better on the mean graph than the
    // zero-angle uniform superposition.
    const auto family = ieee14LoadFamily(0.9, 1.1, 4);
    const auto init = pooledQaoaInit(family, 1, 8);
    const WeightedGraph pooled = meanGraph(family);
    const PauliSum cost = maxcutHamiltonian(pooled);
    const Ansatz ma = makeMaQaoaAnsatz(
        pooled.numNodes, maxcutClauses(pooled), 1, true);

    const Statevector s_init = ma.prepare(init);
    const Statevector s_zero = ma.prepare(
        std::vector<double>(ma.numParams(), 0.0));
    EXPECT_LT(expectation(s_init, cost),
              expectation(s_zero, cost) - 1e-6);
}

TEST(WarmStart, BroadcastIsLayerUniform)
{
    // All clause slots of a layer share one gamma; all mixer slots one
    // beta.
    const auto family = ieee14LoadFamily(0.8, 1.2, 3);
    const auto init = pooledQaoaInit(family, 2, 4);
    const std::size_t m = family[0].edges.size();
    const std::size_t n = static_cast<std::size_t>(family[0].numNodes);
    ASSERT_EQ(init.size(), 2 * (m + n));
    for (std::size_t layer = 0; layer < 2; ++layer) {
        const std::size_t base = layer * (m + n);
        for (std::size_t a = 1; a < m; ++a)
            EXPECT_DOUBLE_EQ(init[base + a], init[base]);
        for (std::size_t b = 1; b < n; ++b)
            EXPECT_DOUBLE_EQ(init[base + m + b], init[base + m]);
    }
}

} // namespace
} // namespace treevqa

/**
 * @file
 * Tests for qubit-wise-commuting measurement grouping.
 */

#include <gtest/gtest.h>

#include "ham/spin_chains.h"
#include "pauli/grouping.h"

namespace treevqa {
namespace {

TEST(Grouping, TfimNeedsTwoCircuits)
{
    // All ZZ terms are mutually QWC; all X terms are mutually QWC; the
    // two families conflict -> exactly 2 measurement circuits.
    const PauliSum h = transverseFieldIsing(5, 1.0, 0.8);
    EXPECT_EQ(numMeasurementCircuits(h), 2u);
}

TEST(Grouping, XxzNeedsThreeCircuits)
{
    // XX, YY and ZZ bond families are pairwise incompatible.
    const PauliSum h = xxzChain(5, 1.0, 0.5);
    EXPECT_EQ(numMeasurementCircuits(h), 3u);
}

TEST(Grouping, EveryTermCoveredExactlyOnce)
{
    const PauliSum h = xxzChain(6, 1.0, 1.3);
    const auto groups = groupQubitWise(h);
    std::vector<int> seen(h.numTerms(), 0);
    for (const auto &g : groups)
        for (std::size_t idx : g.termIndices)
            ++seen[idx];
    for (std::size_t i = 0; i < h.numTerms(); ++i) {
        EXPECT_EQ(seen[i], h.terms()[i].string.isIdentity() ? 0 : 1);
    }
}

TEST(Grouping, MembersPairwiseQwc)
{
    const PauliSum h = xxzChain(6, 1.0, 0.7);
    const auto groups = groupQubitWise(h);
    for (const auto &g : groups) {
        for (std::size_t a = 0; a < g.termIndices.size(); ++a)
            for (std::size_t b = a + 1; b < g.termIndices.size(); ++b) {
                const auto &pa = h.terms()[g.termIndices[a]].string;
                const auto &pb = h.terms()[g.termIndices[b]].string;
                EXPECT_TRUE(pa.qubitWiseCommutesWith(pb));
            }
    }
}

TEST(Grouping, BasisCoversMembers)
{
    const PauliSum h = transverseFieldIsing(4, 1.0, 1.2);
    const auto groups = groupQubitWise(h);
    for (const auto &g : groups)
        for (std::size_t idx : g.termIndices)
            EXPECT_TRUE(h.terms()[idx].string.qubitWiseCommutesWith(
                g.basis));
}

TEST(Grouping, IdentitySkipped)
{
    PauliSum h(2);
    h.add(5.0, "II");
    h.add(1.0, "XZ");
    const auto groups = groupQubitWise(h);
    ASSERT_EQ(groups.size(), 1u);
    EXPECT_EQ(groups[0].termIndices.size(), 1u);
}

TEST(Grouping, SingleDiagonalHamiltonianOneCircuit)
{
    PauliSum h(3);
    h.add(1.0, "ZII");
    h.add(1.0, "IZI");
    h.add(1.0, "ZZZ");
    EXPECT_EQ(numMeasurementCircuits(h), 1u);
}

TEST(Grouping, GroupCountAtMostTermCount)
{
    const PauliSum h = xxzChain(8, 1.0, 0.9);
    const auto groups = groupQubitWise(h);
    EXPECT_LE(groups.size(), h.numMeasuredTerms());
    EXPECT_GE(groups.size(), 1u);
}

} // namespace
} // namespace treevqa

/**
 * @file
 * Tests for the scenario-orchestration runtime (src/svc/) and its
 * foundations: the JSON layer's exact number round-trips, hardened
 * TREEVQA_NUM_THREADS parsing, optimizer state export/import, sweep
 * expansion, scheduler determinism at any pool size, kill-and-resume
 * bit-equivalence, and the append-only result store.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "common/json.h"
#include "common/thread_pool.h"
#include "svc/job_scheduler.h"
#include "svc/result_store.h"
#include "svc/scenario_runner.h"
#include "svc/scenario_spec.h"

namespace treevqa {
namespace {

// ------------------------------------------------------------- helpers

/** Fresh per-test scratch directory under the gtest temp root. */
std::filesystem::path
scratchDir(const std::string &name)
{
    const std::filesystem::path dir =
        std::filesystem::path(::testing::TempDir()) / ("orch_" + name);
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

/** A tiny, fast scenario (4-qubit TFIM, 1-layer HEA, SPSA). */
ScenarioSpec
tinySpec(const std::string &name, double field, int iterations = 12)
{
    ScenarioSpec spec;
    spec.name = name;
    spec.problem = "tfim";
    spec.size = 4;
    spec.field = field;
    spec.ansatz = "hea";
    spec.layers = 1;
    spec.engine.shotsPerTerm = 256;
    spec.maxIterations = iterations;
    spec.seed = 99;
    spec.checkpointInterval = 4;
    return spec;
}

void
expectJobsBitIdentical(const JobResult &a, const JobResult &b)
{
    EXPECT_EQ(a.fingerprint, b.fingerprint);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.shotsUsed, b.shotsUsed);
    ASSERT_EQ(a.trajectory.size(), b.trajectory.size());
    for (std::size_t i = 0; i < a.trajectory.size(); ++i)
        EXPECT_EQ(a.trajectory[i], b.trajectory[i]) << "iteration " << i;
    EXPECT_EQ(a.bestLoss, b.bestLoss);
    ASSERT_EQ(a.bestParams.size(), b.bestParams.size());
    for (std::size_t i = 0; i < a.bestParams.size(); ++i)
        EXPECT_EQ(a.bestParams[i], b.bestParams[i]) << "param " << i;
    EXPECT_EQ(a.finalEnergy, b.finalEnergy);
}

// ---------------------------------------------------------------- json

TEST(Json, ParsesTheBasicShapes)
{
    const JsonValue v = JsonValue::parse(
        R"({"a": 1, "b": [true, null, "x\nA"], "c": -2.5e-3})");
    EXPECT_EQ(v.at("a").asInt(), 1);
    const auto &b = v.at("b").asArray();
    ASSERT_EQ(b.size(), 3u);
    EXPECT_TRUE(b[0].asBool());
    EXPECT_TRUE(b[1].isNull());
    EXPECT_EQ(b[2].asString(), "x\nA");
    EXPECT_DOUBLE_EQ(v.at("c").asDouble(), -2.5e-3);
    EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, IntegersRoundTripExactlyBeyondDoublePrecision)
{
    // 2^53 + 1 is not representable as a double; the store must keep
    // it exact (seeds and shot budgets live here).
    const std::int64_t big = (std::int64_t{1} << 53) + 1;
    const std::uint64_t huge = 18446744073709551615ull;
    JsonValue obj = JsonValue::object();
    obj.set("big", JsonValue(big));
    obj.set("huge", JsonValue(huge));
    const JsonValue back = JsonValue::parse(obj.dump());
    EXPECT_EQ(back.at("big").asInt(), big);
    EXPECT_EQ(back.at("huge").asUint(), huge);
}

TEST(Json, DoublesRoundTripBitForBit)
{
    const std::vector<double> values = {0.1,    1.0 / 3.0, 1e-300,
                                        -2.5e17, 6.02214076e23,
                                        -0.0,   1.0000000000000002};
    for (const double v : values) {
        JsonValue arr = JsonValue::array();
        arr.push_back(JsonValue(v));
        const double back =
            JsonValue::parse(arr.dump()).asArray()[0].asDouble();
        EXPECT_EQ(back, v);
        // Bit-for-bit, not just ==: distinguishes -0.0 from 0.0.
        EXPECT_EQ(std::signbit(back), std::signbit(v));
    }
}

TEST(Json, RejectsPathologicalNestingInsteadOfOverflowing)
{
    // 200k open brackets must throw the documented error, not blow
    // the parser's stack.
    const std::string deep(200000, '[');
    EXPECT_THROW(JsonValue::parse(deep + std::string(200000, ']')),
                 std::runtime_error);
    // Reasonable nesting still parses.
    EXPECT_NO_THROW(JsonValue::parse(std::string(100, '[')
                                     + std::string(100, ']')));
}

TEST(Json, RejectsMalformedInput)
{
    EXPECT_THROW(JsonValue::parse("{"), std::runtime_error);
    EXPECT_THROW(JsonValue::parse("[1,]"), std::runtime_error);
    EXPECT_THROW(JsonValue::parse("1 2"), std::runtime_error);
    EXPECT_THROW(JsonValue::parse("{\"a\" 1}"), std::runtime_error);
    EXPECT_THROW(JsonValue::parse("\"unterminated"),
                 std::runtime_error);
    EXPECT_THROW(JsonValue::parse("nul"), std::runtime_error);
}

TEST(Json, DumpIsDeterministicAndFingerprintStable)
{
    const auto build = [] {
        JsonValue obj = JsonValue::object();
        obj.set("z", JsonValue("last"));
        obj.set("a", JsonValue(std::int64_t{1}));
        return obj;
    };
    EXPECT_EQ(build().dump(), build().dump());
    EXPECT_EQ(jsonFingerprint(build()), jsonFingerprint(build()));
    JsonValue other = build();
    other.set("a", JsonValue(std::int64_t{2}));
    EXPECT_NE(jsonFingerprint(build()), jsonFingerprint(other));
}

// ------------------------------------------------- thread-pool env var

TEST(ThreadPoolEnv, HardenedParsing)
{
    const unsigned hw = std::thread::hardware_concurrency();
    const std::size_t fallback = hw > 0 ? hw : 1;

    const auto with_env = [&](const char *value) {
        ::setenv("TREEVQA_NUM_THREADS", value, 1);
        const std::size_t n = defaultThreadCount();
        ::unsetenv("TREEVQA_NUM_THREADS");
        return n;
    };

    EXPECT_EQ(with_env("7"), 7u);
    EXPECT_EQ(with_env(" 3 "), 3u);
    EXPECT_EQ(with_env("abc"), fallback);
    EXPECT_EQ(with_env("4x"), fallback);
    EXPECT_EQ(with_env("2.5"), fallback);
    EXPECT_EQ(with_env(""), fallback);
    EXPECT_EQ(with_env("0"), fallback);
    EXPECT_EQ(with_env("-3"), fallback);
    EXPECT_EQ(with_env("1000000"), 512u);
    EXPECT_EQ(with_env("99999999999999999999"), 512u);
    ::unsetenv("TREEVQA_NUM_THREADS");
}

// ------------------------------------------- optimizer state round-trip

TEST(OptimizerState, SaveLoadContinuationIsBitIdentical)
{
    // For every shipped optimizer: run a prefix, snapshot, continue
    // both the original and a restored fresh instance, and require
    // identical iterates and losses — the foundation of checkpoint
    // resume.
    const std::vector<double> target = {0.7, -0.3, 0.4};
    const BatchObjective quadratic =
        [&](const std::vector<std::vector<double>> &thetas) {
            std::vector<double> losses;
            for (const auto &theta : thetas) {
                double loss = 0.0;
                for (std::size_t i = 0; i < theta.size(); ++i)
                    loss += (theta[i] - target[i])
                          * (theta[i] - target[i]);
                losses.push_back(loss);
            }
            return losses;
        };

    for (const std::string &name :
         {"spsa", "cobyla", "nelder_mead", "implicit_filtering"}) {
        ScenarioSpec spec;
        spec.optimizer = name;
        spec.seed = 1234;

        auto original = makeScenarioOptimizer(spec);
        original->reset({0.0, 0.0, 0.0});
        for (int k = 0; k < 4; ++k)
            original->stepBatch(quadratic);

        const JsonValue snapshot = original->saveState();
        // The snapshot survives serialization to text and back.
        const JsonValue restored_snapshot =
            JsonValue::parse(snapshot.dump());

        auto restored = makeScenarioOptimizer(spec);
        restored->loadState(restored_snapshot);
        EXPECT_EQ(restored->iteration(), original->iteration()) << name;

        for (int k = 0; k < 6; ++k) {
            const double loss_a = original->stepBatch(quadratic);
            const double loss_b = restored->stepBatch(quadratic);
            EXPECT_EQ(loss_a, loss_b) << name << " step " << k;
            const auto &xa = original->params();
            const auto &xb = restored->params();
            ASSERT_EQ(xa.size(), xb.size());
            for (std::size_t i = 0; i < xa.size(); ++i)
                EXPECT_EQ(xa[i], xb[i]) << name << " step " << k;
        }
    }
}

TEST(OptimizerState, LoadRejectsWrongOptimizer)
{
    ScenarioSpec spsa_spec;
    spsa_spec.optimizer = "spsa";
    auto spsa = makeScenarioOptimizer(spsa_spec);
    spsa->reset({0.0, 0.0});
    const JsonValue snapshot = spsa->saveState();

    ScenarioSpec cobyla_spec;
    cobyla_spec.optimizer = "cobyla";
    auto cobyla = makeScenarioOptimizer(cobyla_spec);
    EXPECT_THROW(cobyla->loadState(snapshot), std::runtime_error);
}

// ------------------------------------------------ spec + sweep expansion

TEST(ScenarioSpec, JsonRoundTripIsAFixedPoint)
{
    for (const std::string &opt :
         {"spsa", "cobyla", "nelder_mead", "implicit_filtering"}) {
        ScenarioSpec spec = tinySpec("roundtrip", 1.25);
        spec.optimizer = opt;
        spec.engine.backendName = "paulprop";
        spec.engine.propConfig.maxWeight = 5;
        spec.shotBudget = (1ull << 62);
        const JsonValue serialized = scenarioToJson(spec);
        const ScenarioSpec restored = scenarioFromJson(serialized);
        EXPECT_EQ(scenarioToJson(restored).dump(), serialized.dump())
            << opt;
        EXPECT_EQ(scenarioFingerprint(restored),
                  scenarioFingerprint(spec))
            << opt;
    }
}

TEST(ScenarioSpec, RejectsUnknownNamesAndKeys)
{
    JsonValue doc = JsonValue::object();
    doc.set("problem", JsonValue("ising3d"));
    EXPECT_THROW(scenarioFromJson(doc), std::invalid_argument);

    JsonValue typo = JsonValue::object();
    typo.set("problme", JsonValue("tfim"));
    EXPECT_THROW(scenarioFromJson(typo), std::invalid_argument);

    JsonValue bad_opt = JsonValue::object();
    bad_opt.set("optimizer", JsonValue("adam"));
    EXPECT_THROW(scenarioFromJson(bad_opt), std::invalid_argument);

    JsonValue bad_backend = JsonValue::object();
    JsonValue engine = JsonValue::object();
    engine.set("backend", JsonValue("gpu-someday"));
    bad_backend.set("engine", std::move(engine));
    EXPECT_THROW(scenarioFromJson(bad_backend), std::invalid_argument);

    // Typo'd keys nested inside the optimizer/engine blocks are
    // rejected too, not silently ignored.
    JsonValue bad_hyper = JsonValue::object();
    JsonValue spsa = JsonValue::object();
    spsa.set("name", JsonValue("spsa"));
    spsa.set("stepNorm", JsonValue(0.3)); // should be maxStepNorm
    bad_hyper.set("optimizer", std::move(spsa));
    EXPECT_THROW(scenarioFromJson(bad_hyper), std::invalid_argument);

    JsonValue bad_engine_key = JsonValue::object();
    JsonValue engine_typo = JsonValue::object();
    engine_typo.set("shotsPerTem", JsonValue(std::int64_t{1024}));
    bad_engine_key.set("engine", std::move(engine_typo));
    EXPECT_THROW(scenarioFromJson(bad_engine_key),
                 std::invalid_argument);
}

TEST(ScenarioSpec, SweepExpandsTheCrossProductDeterministically)
{
    JsonValue request = JsonValue::object();
    request.set("name", JsonValue("grid"));
    request.set("problem", JsonValue("tfim"));
    request.set("size", JsonValue(std::int64_t{4}));
    JsonValue sweep = JsonValue::object();
    JsonValue fields = JsonValue::array();
    fields.push_back(JsonValue(0.5));
    fields.push_back(JsonValue(1.0));
    fields.push_back(JsonValue(1.5));
    sweep.set("field", std::move(fields));
    JsonValue seeds = JsonValue::array();
    seeds.push_back(JsonValue(std::uint64_t{1}));
    seeds.push_back(JsonValue(std::uint64_t{2}));
    sweep.set("seed", std::move(seeds));
    request.set("sweep", std::move(sweep));

    const std::vector<ScenarioSpec> specs = expandScenarios(request);
    ASSERT_EQ(specs.size(), 6u);
    // Last sweep key varies fastest; names encode the assignment.
    EXPECT_EQ(specs[0].name, "grid/field=0.5/seed=1");
    EXPECT_EQ(specs[1].name, "grid/field=0.5/seed=2");
    EXPECT_EQ(specs[2].name, "grid/field=1.0/seed=1");
    EXPECT_EQ(specs[5].name, "grid/field=1.5/seed=2");
    EXPECT_EQ(specs[2].field, 1.0);
    EXPECT_EQ(specs[2].seed, 1u);

    // Every expanded spec has a distinct fingerprint.
    for (std::size_t i = 0; i < specs.size(); ++i)
        for (std::size_t j = i + 1; j < specs.size(); ++j)
            EXPECT_NE(scenarioFingerprint(specs[i]),
                      scenarioFingerprint(specs[j]));

    // An array request concatenates expansions.
    JsonValue list = JsonValue::array();
    list.push_back(request);
    JsonValue single = JsonValue::object();
    single.set("name", JsonValue("solo"));
    list.push_back(std::move(single));
    EXPECT_EQ(expandScenarios(list).size(), 7u);
}

// --------------------------------------------- scheduler determinism

TEST(JobScheduler, SweepIsBitIdenticalAtAnyPoolSize)
{
    // A 3-scenario sweep must produce byte-identical per-job energy
    // records whether jobs run serially or share 4 lanes — jobs
    // derive every stream from their spec, never from scheduling.
    const std::vector<ScenarioSpec> specs = {tinySpec("a", 0.6),
                                             tinySpec("b", 1.0),
                                             tinySpec("c", 1.4)};

    ThreadPool::global().resize(1);
    const SweepResult serial = JobScheduler().run(specs);
    ThreadPool::global().resize(4);
    const SweepResult pooled = JobScheduler().run(specs);
    ThreadPool::global().resize(0);

    ASSERT_EQ(serial.jobs.size(), 3u);
    ASSERT_EQ(pooled.jobs.size(), 3u);
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_TRUE(serial.jobs[i].completed);
        expectJobsBitIdentical(serial.jobs[i], pooled.jobs[i]);
    }
    // Distinct scenarios reached distinct energies (the sweep did
    // something).
    EXPECT_NE(serial.jobs[0].finalEnergy, serial.jobs[1].finalEnergy);
}

TEST(JobScheduler, RejectsDuplicateSpecs)
{
    const std::vector<ScenarioSpec> specs = {tinySpec("same", 1.0),
                                             tinySpec("same", 1.0)};
    EXPECT_THROW(JobScheduler().run(specs), std::invalid_argument);
}

// ------------------------------------------------- checkpoint / resume

TEST(ScenarioRunner, KillAndResumeReachesIdenticalEnergies)
{
    const std::filesystem::path dir = scratchDir("resume");
    ScenarioSpec spec = tinySpec("resume-me", 0.9, 14);
    spec.checkpointInterval = 4;

    // Uninterrupted reference.
    const JobResult reference = runScenario(spec);
    ASSERT_TRUE(reference.completed);
    EXPECT_FALSE(reference.resumed);
    EXPECT_EQ(reference.iterations, 14);

    // Interrupted run: halt after 6 iterations. The last durable
    // checkpoint is at iteration 4, so iterations 5-6 are lost — as
    // with a real kill — and re-executed on resume.
    ScenarioRunOptions interrupted;
    interrupted.checkpointPath = (dir / "job.json").string();
    interrupted.haltAfterIterations = 6;
    const JobResult partial = runScenario(spec, interrupted);
    EXPECT_FALSE(partial.completed);
    EXPECT_EQ(partial.iterations, 6);
    EXPECT_TRUE(
        std::filesystem::exists(interrupted.checkpointPath));

    int checkpoints_after_resume = 0;
    ScenarioRunOptions resume;
    resume.checkpointPath = interrupted.checkpointPath;
    resume.onCheckpoint = [&] { ++checkpoints_after_resume; };
    const JobResult resumed = runScenario(spec, resume);
    EXPECT_TRUE(resumed.completed);
    EXPECT_TRUE(resumed.resumed);
    EXPECT_GT(checkpoints_after_resume, 0);

    expectJobsBitIdentical(reference, resumed);
    // A finished job retires its checkpoint.
    EXPECT_FALSE(std::filesystem::exists(resume.checkpointPath));
}

TEST(ScenarioRunner, MismatchedCheckpointRestartsFresh)
{
    const std::filesystem::path dir = scratchDir("mismatch");
    const std::string path = (dir / "job.json").string();

    // Leave a checkpoint belonging to a *different* spec behind.
    ScenarioSpec other = tinySpec("other", 1.3, 10);
    ScenarioRunOptions halt;
    halt.checkpointPath = path;
    halt.haltAfterIterations = 5;
    runScenario(other, halt);
    ASSERT_TRUE(std::filesystem::exists(path));

    ScenarioSpec spec = tinySpec("fresh", 0.7, 10);
    ScenarioRunOptions options;
    options.checkpointPath = path;
    const JobResult run = runScenario(spec, options);
    EXPECT_TRUE(run.completed);
    EXPECT_FALSE(run.resumed); // foreign checkpoint was ignored
    expectJobsBitIdentical(run, runScenario(spec));
}

TEST(JobScheduler, StoreResumeSkipsCompletedJobsAndMatchesFreshRun)
{
    const std::filesystem::path fresh_dir = scratchDir("store_fresh");
    const std::filesystem::path killed_dir = scratchDir("store_killed");
    const std::vector<ScenarioSpec> specs = {tinySpec("a", 0.6),
                                             tinySpec("b", 1.0),
                                             tinySpec("c", 1.4)};

    SchedulerConfig fresh_config;
    fresh_config.outDir = fresh_dir.string();
    const SweepResult fresh = JobScheduler(fresh_config).run(specs);
    EXPECT_EQ(fresh.executed, 3u);
    EXPECT_EQ(fresh.skipped, 0u);

    // "Kill" a second sweep mid-flight: every job halts after 6
    // iterations with a checkpoint at 4, nothing is recorded.
    SchedulerConfig killed_config;
    killed_config.outDir = killed_dir.string();
    killed_config.haltJobsAfterIterations = 6;
    const SweepResult killed = JobScheduler(killed_config).run(specs);
    for (const JobResult &job : killed.jobs)
        EXPECT_FALSE(job.completed);

    // Relaunch: all three resume from their checkpoints and complete.
    SchedulerConfig resume_config;
    resume_config.outDir = killed_dir.string();
    const SweepResult resumed =
        JobScheduler(resume_config).run(specs);
    EXPECT_EQ(resumed.executed, 3u);
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_TRUE(resumed.jobs[i].completed);
        EXPECT_TRUE(resumed.jobs[i].resumed);
        expectJobsBitIdentical(fresh.jobs[i], resumed.jobs[i]);
    }

    // Relaunch again: everything is in the store now, nothing runs,
    // and the loaded records still carry the same energies.
    const SweepResult skipped =
        JobScheduler(resume_config).run(specs);
    EXPECT_EQ(skipped.executed, 0u);
    EXPECT_EQ(skipped.skipped, 3u);
    for (std::size_t i = 0; i < specs.size(); ++i)
        expectJobsBitIdentical(fresh.jobs[i], skipped.jobs[i]);

    // The two stores' deterministic summaries agree byte-for-byte.
    EXPECT_EQ(sweepSummaryJson(fresh.jobs).dump(2),
              sweepSummaryJson(skipped.jobs).dump(2));
}

// --------------------------------------------------------- result store

TEST(ResultStore, RoundTripsRecordsAndToleratesTornLines)
{
    const std::filesystem::path dir = scratchDir("store_io");
    ResultStore store((dir / "results.jsonl").string());

    const JobResult a = runScenario(tinySpec("x", 0.8, 6));
    const JobResult b = runScenario(tinySpec("y", 1.2, 6));
    store.append(a);

    // Simulate the torn (newline-less) final line of a killed writer;
    // the next append must seal it rather than merge into it.
    {
        std::ofstream torn(store.path(), std::ios::app);
        torn << "{\"name\": \"torn-rec";
    }
    store.append(b);

    const std::vector<JobResult> loaded = store.load();
    ASSERT_EQ(loaded.size(), 2u);
    expectJobsBitIdentical(a, loaded[0]);
    expectJobsBitIdentical(b, loaded[1]);
    EXPECT_EQ(loaded[0].spec.name, "x");
    EXPECT_EQ(loaded[0].backend, "statevector");
    EXPECT_EQ(loaded[1].spec.name, "y");
    // Record JSON reconstructs the spec losslessly.
    EXPECT_EQ(scenarioToJson(loaded[0].spec).dump(),
              scenarioToJson(a.spec).dump());
}

} // namespace
} // namespace treevqa

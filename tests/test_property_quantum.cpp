/**
 * @file
 * Randomized property tests over the quantum algebra stack: invariants
 * that must hold for *any* operators and states, swept over seeds with
 * TEST_P.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/hardware_efficient.h"
#include "common/rng.h"
#include "linalg/jacobi.h"
#include "linalg/lanczos.h"
#include "pauli/grouping.h"
#include "pauli/pauli_sum.h"
#include "sim/expectation.h"

namespace treevqa {
namespace {

PauliString
randomString(Rng &rng, int n)
{
    PauliString p(n);
    const char ops[4] = {'I', 'X', 'Y', 'Z'};
    for (int q = 0; q < n; ++q)
        p.setOp(q, ops[rng.uniformInt(4)]);
    return p;
}

PauliSum
randomSum(Rng &rng, int n, int terms)
{
    PauliSum h(n);
    for (int t = 0; t < terms; ++t)
        h.add(rng.normal(), randomString(rng, n));
    h.compress(0.0);
    return h;
}

class QuantumPropertySweep
    : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    Rng rng_{GetParam() * 7919 + 13};
};

TEST_P(QuantumPropertySweep, PauliMultiplicationIsAssociative)
{
    const int n = 5;
    const PauliString a = randomString(rng_, n);
    const PauliString b = randomString(rng_, n);
    const PauliString c = randomString(rng_, n);

    const PauliProduct ab = multiply(a, b);
    const PauliProduct ab_c = multiply(ab.string, c);
    const PauliProduct bc = multiply(b, c);
    const PauliProduct a_bc = multiply(a, bc.string);

    EXPECT_EQ(ab_c.string, a_bc.string);
    EXPECT_NEAR(std::abs(ab.phase * ab_c.phase
                         - bc.phase * a_bc.phase), 0.0, 1e-14);
}

TEST_P(QuantumPropertySweep, CommutationMatchesProductPhases)
{
    const int n = 6;
    const PauliString p = randomString(rng_, n);
    const PauliString q = randomString(rng_, n);
    const PauliProduct pq = multiply(p, q);
    const PauliProduct qp = multiply(q, p);
    ASSERT_EQ(pq.string, qp.string);
    if (p.commutesWith(q))
        EXPECT_NEAR(std::abs(pq.phase - qp.phase), 0.0, 1e-14);
    else
        EXPECT_NEAR(std::abs(pq.phase + qp.phase), 0.0, 1e-14);
}

TEST_P(QuantumPropertySweep, PauliSquareIsIdentity)
{
    const PauliString p = randomString(rng_, 8);
    const PauliProduct pp = multiply(p, p);
    EXPECT_TRUE(pp.string.isIdentity());
    EXPECT_NEAR(std::abs(pp.phase - Complex(1, 0)), 0.0, 1e-14);
}

TEST_P(QuantumPropertySweep, ApplyToIsLinear)
{
    const int n = 4;
    const PauliSum h = randomSum(rng_, n, 6);
    const std::size_t dim = 16;
    CVector x(dim), y(dim);
    for (auto &z : x)
        z = Complex(rng_.normal(), rng_.normal());
    for (auto &z : y)
        z = Complex(rng_.normal(), rng_.normal());
    const Complex alpha(rng_.normal(), rng_.normal());

    CVector hx, hy, hxy;
    h.applyTo(x, hx);
    h.applyTo(y, hy);
    CVector combo(dim);
    for (std::size_t i = 0; i < dim; ++i)
        combo[i] = alpha * x[i] + y[i];
    h.applyTo(combo, hxy);
    for (std::size_t i = 0; i < dim; ++i)
        EXPECT_NEAR(std::abs(hxy[i] - (alpha * hx[i] + hy[i])), 0.0,
                    1e-10);
}

TEST_P(QuantumPropertySweep, ExpectationIsRealAndWithinSpectrum)
{
    // <H> must be real and inside [lambda_min, lambda_max]; bound the
    // spectrum by the l1 norm.
    const int n = 4;
    const PauliSum h = randomSum(rng_, n, 8);
    const Ansatz ansatz = makeHardwareEfficientAnsatz(n, 2, 0);
    std::vector<double> theta(ansatz.numParams());
    for (auto &t : theta)
        t = rng_.uniform(-3, 3);
    const Statevector s = ansatz.prepare(theta);
    const double e = expectation(s, h);
    EXPECT_LE(std::fabs(e), h.l1NormWithIdentity() + 1e-9);
}

TEST_P(QuantumPropertySweep, MixedExpectationIsMeanOfMembers)
{
    const int n = 4;
    std::vector<PauliSum> family;
    for (int i = 0; i < 4; ++i)
        family.push_back(randomSum(rng_, n, 5));
    const PauliSum mixed = mixedHamiltonian(family);

    const Ansatz ansatz = makeHardwareEfficientAnsatz(n, 1, 0);
    std::vector<double> theta(ansatz.numParams());
    for (auto &t : theta)
        t = rng_.uniform(-2, 2);
    const Statevector s = ansatz.prepare(theta);

    double mean_e = 0.0;
    for (const auto &h : family)
        mean_e += expectation(s, h) / family.size();
    EXPECT_NEAR(expectation(s, mixed), mean_e, 1e-9);
}

TEST_P(QuantumPropertySweep, L1DistanceTriangleInequality)
{
    const int n = 5;
    const PauliSum a = randomSum(rng_, n, 6);
    const PauliSum b = randomSum(rng_, n, 6);
    const PauliSum c = randomSum(rng_, n, 6);
    EXPECT_LE(l1Distance(a, c),
              l1Distance(a, b) + l1Distance(b, c) + 1e-9);
}

TEST_P(QuantumPropertySweep, QwcGroupsValidOnRandomHamiltonians)
{
    const PauliSum h = randomSum(rng_, 6, 20);
    const auto groups = groupQubitWise(h);
    for (const auto &g : groups)
        for (std::size_t a = 0; a < g.termIndices.size(); ++a)
            for (std::size_t b = a + 1; b < g.termIndices.size(); ++b)
                EXPECT_TRUE(
                    h.terms()[g.termIndices[a]]
                        .string.qubitWiseCommutesWith(
                            h.terms()[g.termIndices[b]].string));
}

TEST_P(QuantumPropertySweep, LanczosMatchesDenseOnRandomHamiltonian)
{
    // Random 3-qubit Hermitian Pauli sum: Lanczos ground energy equals
    // the dense Jacobi result on the realified 16x16 embedding
    // [[Re, -Im], [Im, Re]].
    const int n = 3;
    const std::size_t dim = 8;
    const PauliSum h = randomSum(rng_, n, 10);

    Matrix real_embed(2 * dim, 2 * dim, 0.0);
    for (std::size_t col = 0; col < dim; ++col) {
        CVector e(dim, Complex(0, 0)), out;
        e[col] = 1.0;
        h.applyTo(e, out);
        for (std::size_t row = 0; row < dim; ++row) {
            real_embed(row, col) = out[row].real();
            real_embed(row + dim, col + dim) = out[row].real();
            real_embed(row + dim, col) = out[row].imag();
            real_embed(row, col + dim) = -out[row].imag();
        }
    }
    const double dense_min = jacobiEigen(real_embed).values[0];

    const MatVec mv = [&h](const CVector &x, CVector &y) {
        h.applyTo(x, y);
    };
    Rng lanczos_rng(GetParam() + 101);
    EXPECT_NEAR(lanczosGroundState(dim, mv, lanczos_rng).eigenvalue,
                dense_min, 1e-7);
}

TEST_P(QuantumPropertySweep, BatchedExpectationsMatchHamiltonian)
{
    const int n = 4;
    const PauliSum h = randomSum(rng_, n, 12);
    const Ansatz ansatz = makeHardwareEfficientAnsatz(n, 2, 0b0101);
    std::vector<double> theta(ansatz.numParams());
    for (auto &t : theta)
        t = rng_.uniform(-2, 2);
    const Statevector s = ansatz.prepare(theta);

    std::vector<PauliString> strings;
    for (const auto &term : h.terms())
        strings.push_back(term.string);
    const auto values = perStringExpectations(s, strings);
    double total = 0.0;
    for (std::size_t k = 0; k < strings.size(); ++k)
        total += h.terms()[k].coefficient * values[k];
    EXPECT_NEAR(total, expectation(s, h), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantumPropertySweep,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull,
                                           5ull, 6ull, 7ull, 8ull,
                                           9ull, 10ull));

} // namespace
} // namespace treevqa

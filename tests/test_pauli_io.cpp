/**
 * @file
 * Tests for Pauli-sum text serialization.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "chem/molecule.h"
#include "pauli/pauli_io.h"

namespace treevqa {
namespace {

TEST(PauliIo, RoundTripSimple)
{
    PauliSum h(3);
    h.add(0.5, "XIZ");
    h.add(-1.25, "IYI");
    h.add(2.0, "III");
    const PauliSum back = pauliSumFromText(toText(h));
    EXPECT_EQ(back.numQubits(), 3);
    EXPECT_DOUBLE_EQ(l1Distance(h, back), 0.0);
    EXPECT_DOUBLE_EQ(back.normalizedTrace(), 2.0);
}

TEST(PauliIo, RoundTripPreservesPrecision)
{
    PauliSum h(2);
    h.add(0.12345678901234567, "XY");
    const PauliSum back = pauliSumFromText(toText(h));
    EXPECT_DOUBLE_EQ(back.terms()[0].coefficient,
                     0.12345678901234567);
}

TEST(PauliIo, RoundTripRealMolecule)
{
    const PauliSum h2 = buildH2(0.74).hamiltonian;
    const PauliSum back = pauliSumFromText(toText(h2));
    EXPECT_EQ(back.numTerms(), h2.numTerms());
    EXPECT_NEAR(l1Distance(h2, back), 0.0, 1e-14);
}

TEST(PauliIo, ParsesCommentsAndBlanks)
{
    const PauliSum h = pauliSumFromText(
        "# header comment\n"
        "\n"
        "0.5 XZ  # trailing comment\n"
        "-0.5 IZ\n");
    EXPECT_EQ(h.numTerms(), 2u);
    EXPECT_DOUBLE_EQ(
        h.coefficientOf(PauliString::fromLabel("XZ")), 0.5);
}

TEST(PauliIo, MergesDuplicateTerms)
{
    const PauliSum h = pauliSumFromText("0.5 ZZ\n0.25 ZZ\n");
    EXPECT_EQ(h.numTerms(), 1u);
    EXPECT_DOUBLE_EQ(h.terms()[0].coefficient, 0.75);
}

TEST(PauliIo, RejectsMalformedInput)
{
    EXPECT_THROW(pauliSumFromText(""), std::invalid_argument);
    EXPECT_THROW(pauliSumFromText("0.5\n"), std::invalid_argument);
    EXPECT_THROW(pauliSumFromText("0.5 XZ extra\n"),
                 std::invalid_argument);
    EXPECT_THROW(pauliSumFromText("0.5 XZ\n0.5 XZY\n"),
                 std::invalid_argument);
    EXPECT_THROW(pauliSumFromText("0.5 XQ\n"), std::invalid_argument);
}

TEST(PauliIo, FileRoundTrip)
{
    PauliSum h(2);
    h.add(1.5, "ZZ");
    h.add(-0.5, "XI");
    const std::string path = "/tmp/treevqa_io_test.txt";
    ASSERT_TRUE(saveToFile(h, path));
    const PauliSum back = loadFromFile(path);
    EXPECT_NEAR(l1Distance(h, back), 0.0, 1e-14);
    std::remove(path.c_str());
}

TEST(PauliIo, LoadMissingFileThrows)
{
    EXPECT_THROW(loadFromFile("/nonexistent/path/x.txt"),
                 std::runtime_error);
}

} // namespace
} // namespace treevqa

/**
 * @file
 * Tests for the global-depolarizing + readout noise model (Table 2
 * substrate).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/noise_model.h"

namespace treevqa {
namespace {

TEST(NoiseModel, DefaultIsNoiseless)
{
    NoiseModel m;
    EXPECT_TRUE(m.isNoiseless());
    EXPECT_DOUBLE_EQ(
        m.dampingFactor(PauliString::fromLabel("XYZ"), 5), 1.0);
}

TEST(NoiseModel, IdentityNeverDamped)
{
    NoiseModel m(0.9, 0.9, "test");
    EXPECT_DOUBLE_EQ(m.dampingFactor(PauliString(4), 10), 1.0);
}

TEST(NoiseModel, DampingFollowsFormula)
{
    NoiseModel m(0.99, 0.98, "test");
    const PauliString p = PauliString::fromLabel("XZI"); // weight 2
    const double expected =
        std::pow(0.99, 3) * std::pow(0.98, 2);
    EXPECT_NEAR(m.dampingFactor(p, 3), expected, 1e-15);
}

TEST(NoiseModel, MoreLayersMoreDamping)
{
    NoiseModel m(0.99, 1.0, "test");
    const PauliString p = PauliString::fromLabel("Z");
    EXPECT_GT(m.dampingFactor(p, 2), m.dampingFactor(p, 5));
}

TEST(NoiseModel, HeavierStringsDampMore)
{
    NoiseModel m(1.0, 0.95, "test");
    EXPECT_GT(m.dampingFactor(PauliString::fromLabel("ZII"), 1),
              m.dampingFactor(PauliString::fromLabel("ZZZ"), 1));
}

TEST(NoiseModel, ApplyToTermsDampsOnlyNonIdentity)
{
    PauliSum h(2);
    h.add(2.0, "II");
    h.add(1.0, "ZZ");
    NoiseModel m(0.9, 1.0, "test");
    const auto noisy = m.applyToTerms(h, {1.0, 0.8}, 2);
    EXPECT_DOUBLE_EQ(noisy[0], 1.0);
    EXPECT_NEAR(noisy[1], 0.8 * 0.81, 1e-12);
}

TEST(NoiseModel, IbmLikeBackendsShapeAndOrdering)
{
    const auto backends = NoiseModel::ibmLikeBackends();
    ASSERT_EQ(backends.size(), 5u);
    // Names match Table 2.
    EXPECT_EQ(backends[0].name(), "Hanoi");
    EXPECT_EQ(backends[1].name(), "Cairo");
    EXPECT_EQ(backends[2].name(), "Mumbai");
    EXPECT_EQ(backends[3].name(), "Kolkata");
    EXPECT_EQ(backends[4].name(), "Auckland");
    // All are genuinely noisy.
    for (const auto &b : backends) {
        EXPECT_FALSE(b.isNoiseless());
        EXPECT_GT(b.gateFidelity(), 0.9);
        EXPECT_LE(b.gateFidelity(), 1.0);
    }
    // Cairo is the best backend, Kolkata the worst (published error
    // ordering).
    EXPECT_GT(backends[1].gateFidelity(), backends[3].gateFidelity());
}

TEST(NoiseModel, Depolarizing1PctMatchesSection84)
{
    const NoiseModel m = NoiseModel::depolarizing1pct();
    EXPECT_NEAR(m.gateFidelity(), 0.99, 1e-12);
    EXPECT_DOUBLE_EQ(m.readoutFidelity(), 1.0);
}

} // namespace
} // namespace treevqa

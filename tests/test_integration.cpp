/**
 * @file
 * End-to-end integration tests: TreeVQA vs the conventional baseline
 * on small applications, exercising the full stack (Hamiltonians,
 * ansatz, optimizer, shot accounting, splitting, post-processing).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/hardware_efficient.h"
#include "circuit/uccsd_min.h"
#include "chem/molecule.h"
#include "core/baseline.h"
#include "core/tree_controller.h"
#include "ham/spin_chains.h"
#include "opt/cobyla.h"
#include "opt/spsa.h"

namespace treevqa {
namespace {

TEST(Integration, TreeVqaBeatsBaselineShotsToFidelityOnTfim)
{
    auto tasks =
        makeTasks("tfim", tfimFamily(6, 0.6, 1.4, 8), 0);
    solveGroundEnergies(tasks);
    const Ansatz ansatz = makeHardwareEfficientAnsatz(6, 2, 0);
    Spsa proto(SpsaConfig{}, 1);

    TreeVqaConfig tree_cfg;
    tree_cfg.shotBudget = 1ull << 62;
    tree_cfg.maxRounds = 300;
    tree_cfg.seed = 7;
    TreeController tree(tasks, ansatz, proto, tree_cfg);
    const TreeVqaResult tr = tree.run();

    BaselineConfig base_cfg;
    base_cfg.shotBudget = 1ull << 62;
    base_cfg.maxIterationsPerTask = 300;
    base_cfg.seed = 8;
    const BaselineResult br = runBaseline(tasks, ansatz, proto,
                                          base_cfg);

    // Both reach a solid fidelity; TreeVQA reaches moderate targets
    // with fewer shots (the paper's headline claim, Fig. 6).
    const double target = 0.80;
    const std::uint64_t tree_shots =
        shotsToReachFidelity(tr.trace, tasks, target);
    const std::uint64_t base_shots =
        shotsToReachFidelity(br.trace, tasks, target);
    ASSERT_NE(tree_shots, std::numeric_limits<std::uint64_t>::max());
    ASSERT_NE(base_shots, std::numeric_limits<std::uint64_t>::max());
    EXPECT_LT(tree_shots, base_shots);
}

TEST(Integration, TreeVqaHigherFidelityAtFixedBudget)
{
    // Fig. 7 shape: at a modest shared budget TreeVQA attains at least
    // the baseline's application fidelity.
    auto tasks =
        makeTasks("tfim", tfimFamily(5, 0.7, 1.3, 6), 0);
    solveGroundEnergies(tasks);
    const Ansatz ansatz = makeHardwareEfficientAnsatz(5, 2, 0);
    Spsa proto(SpsaConfig{}, 2);

    TreeVqaConfig tree_cfg;
    tree_cfg.shotBudget = 1ull << 62;
    tree_cfg.maxRounds = 250;
    tree_cfg.seed = 9;
    TreeController tree(tasks, ansatz, proto, tree_cfg);
    const TreeVqaResult tr = tree.run();

    BaselineConfig base_cfg;
    base_cfg.shotBudget = 1ull << 62;
    base_cfg.maxIterationsPerTask = 250;
    base_cfg.seed = 10;
    const BaselineResult br =
        runBaseline(tasks, ansatz, proto, base_cfg);

    const std::uint64_t budget = 2ull * 100 * 4096 * 9 * 6;
    EXPECT_GE(fidelityAtBudget(tr.trace, tasks, budget) + 0.02,
              fidelityAtBudget(br.trace, tasks, budget));
}

TEST(Integration, H2UccsdPipelineReachesChemicalRegime)
{
    // Real ab-initio H2 + UCCSD: 5 bond lengths (the paper's H2
    // setting). The 3-parameter ansatz converges fast even with shot
    // noise; every task must exceed 0.99 energy fidelity.
    std::vector<PauliSum> hams;
    for (double bond : {0.74, 0.765, 0.79, 0.815, 0.83})
        hams.push_back(buildH2(bond).hamiltonian);
    auto tasks = makeTasks("H2", hams, 0b0011);
    solveGroundEnergies(tasks);

    const Ansatz ansatz = makeUccsdMinimalAnsatz();
    SpsaConfig sc;
    sc.a = 0.1;
    sc.maxStepNorm = 0.3;
    Spsa proto(sc, 3);

    TreeVqaConfig cfg;
    cfg.shotBudget = 1ull << 62;
    cfg.maxRounds = 120;
    cfg.seed = 11;
    TreeController tree(tasks, ansatz, proto, cfg);
    const TreeVqaResult res = tree.run();
    for (const auto &o : res.outcomes)
        EXPECT_GT(o.fidelity, 0.99);
}

TEST(Integration, CobylaPlugAndPlay)
{
    // Section 8.6: swapping the optimizer requires no other change.
    auto tasks =
        makeTasks("tfim", tfimFamily(4, 0.8, 1.2, 4), 0);
    solveGroundEnergies(tasks);
    const Ansatz ansatz = makeHardwareEfficientAnsatz(4, 2, 0);
    Cobyla proto;

    TreeVqaConfig cfg;
    cfg.shotBudget = 1ull << 62;
    cfg.maxRounds = 200;
    cfg.seed = 12;
    TreeController tree(tasks, ansatz, proto, cfg);
    const TreeVqaResult res = tree.run();
    for (const auto &o : res.outcomes) {
        EXPECT_TRUE(std::isfinite(o.bestEnergy));
        EXPECT_GT(o.fidelity, 0.3);
    }
}

TEST(Integration, SharedPhaseCheaperThanIndependentPerRound)
{
    // Structural invariant behind all the savings: while unsplit, one
    // TreeVQA round costs ~1/N of a baseline round over N
    // structure-sharing tasks.
    auto tasks =
        makeTasks("tfim", tfimFamily(5, 0.9, 1.1, 10), 0);
    const Ansatz ansatz = makeHardwareEfficientAnsatz(5, 2, 0);
    Spsa proto(SpsaConfig{}, 4);

    TreeVqaConfig cfg;
    cfg.shotBudget = 1ull << 62;
    cfg.maxRounds = 10; // all within warmup: no splits
    cfg.seed = 13;
    TreeController tree(tasks, ansatz, proto, cfg);
    const TreeVqaResult tr = tree.run();

    BaselineConfig bcfg;
    bcfg.shotBudget = 1ull << 62;
    bcfg.maxIterationsPerTask = 10;
    bcfg.seed = 14;
    const BaselineResult br =
        runBaseline(tasks, ansatz, proto, bcfg);

    EXPECT_NEAR(static_cast<double>(br.totalShots)
                / static_cast<double>(tr.totalShots),
                10.0, 0.01);
}

TEST(Integration, NoisyExecutionStillImproves)
{
    // Section 8.7 path: a noisy backend deforms the objective but the
    // run must still make progress.
    auto tasks =
        makeTasks("tfim", tfimFamily(4, 0.8, 1.2, 4), 0);
    solveGroundEnergies(tasks);
    const Ansatz ansatz = makeHardwareEfficientAnsatz(4, 2, 0);
    Spsa proto(SpsaConfig{}, 5);

    TreeVqaConfig cfg;
    cfg.shotBudget = 1ull << 62;
    cfg.maxRounds = 200;
    cfg.seed = 15;
    cfg.engine.noise = NoiseModel::ibmLikeBackends()[0];
    TreeController tree(tasks, ansatz, proto, cfg);
    const TreeVqaResult res = tree.run();
    ASSERT_GE(res.trace.size(), 2u);
    EXPECT_GT(minFidelity(res.trace.back(), tree.tasks()),
              minFidelity(res.trace.front(), tree.tasks()));
}

} // namespace
} // namespace treevqa

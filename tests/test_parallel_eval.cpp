/**
 * @file
 * Tests for the batched, thread-parallel evaluation engine: thread-pool
 * invariants, batched normal sampling, evaluateBatch bit-equivalence
 * across thread counts, threaded expectations vs the naive reference,
 * batch-vs-serial optimizer equivalence, and pool-size invariance of a
 * full TreeVQA run.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <vector>

#include "circuit/hardware_efficient.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/objective.h"
#include "core/tree_controller.h"
#include "ham/spin_chains.h"
#include "opt/cobyla.h"
#include "opt/implicit_filtering.h"
#include "opt/nelder_mead.h"
#include "opt/spsa.h"
#include "sim/expectation.h"
#include "sim/reference_kernels.h"

namespace treevqa {
namespace {

/** Sets the global pool to `threads` lanes for one test scope. */
class PoolSizeGuard
{
  public:
    explicit PoolSizeGuard(std::size_t threads)
    {
        ThreadPool::global().resize(threads);
    }
    ~PoolSizeGuard() { ThreadPool::global().resize(0); }
};

TEST(ThreadPool, RunCoversEveryIndexExactlyOnce)
{
    PoolSizeGuard guard(4);
    constexpr std::size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    for (auto &h : hits)
        h = 0;
    ThreadPool::global().run(n, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, NestedRunExecutesInline)
{
    PoolSizeGuard guard(4);
    std::atomic<int> total{0};
    ThreadPool::global().run(8, [&](std::size_t) {
        // A nested run must not deadlock and must still cover its
        // index space.
        ThreadPool::global().run(16,
                                 [&](std::size_t) { ++total; });
    });
    EXPECT_EQ(total.load(), 8 * 16);
}

TEST(ThreadPool, SingleLaneRunsInSubmissionOrder)
{
    PoolSizeGuard guard(1);
    std::vector<std::size_t> order;
    ThreadPool::global().run(64, [&](std::size_t i) {
        order.push_back(i);
    });
    ASSERT_EQ(order.size(), 64u);
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(Rng, NormalVectorIsDeterministicAndWellDistributed)
{
    Rng a(123), b(123);
    const std::vector<double> va = a.normalVector(10001);
    const std::vector<double> vb = b.normalVector(10001);
    EXPECT_EQ(va, vb);

    double mean = 0.0, var = 0.0;
    for (double x : va)
        mean += x;
    mean /= static_cast<double>(va.size());
    for (double x : va)
        var += (x - mean) * (x - mean);
    var /= static_cast<double>(va.size());
    EXPECT_NEAR(mean, 0.0, 0.03);
    EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, NormalVectorOddAndChunkBoundaryLengths)
{
    // Lengths around the internal chunk size and odd tails must all
    // produce exactly n finite values.
    for (std::size_t n : {1u, 2u, 3u, 255u, 256u, 257u, 511u, 513u}) {
        Rng rng(n);
        const std::vector<double> v = rng.normalVector(n);
        ASSERT_EQ(v.size(), n);
        for (double x : v)
            EXPECT_TRUE(std::isfinite(x));
    }
}

/** A noisy 6-qubit, 5-task TFIM cluster objective. */
ClusterObjective
makeObjective()
{
    return ClusterObjective(tfimFamily(6, 0.5, 1.5, 5),
                            makeHardwareEfficientAnsatz(6, 2, 0b010101),
                            EngineConfig{});
}

std::vector<std::vector<double>>
makeThetas(int num_params, std::size_t batch, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::vector<double>> thetas(batch);
    for (auto &theta : thetas) {
        theta.resize(num_params);
        for (auto &t : theta)
            t = rng.uniform(-2, 2);
    }
    return thetas;
}

TEST(EvaluateBatch, BitIdenticalAcrossThreadCounts)
{
    const ClusterObjective obj = makeObjective();
    const auto thetas =
        makeThetas(obj.ansatz().numParams(), 8, 17);

    std::vector<std::vector<ClusterEvaluation>> runs;
    for (std::size_t threads : {1u, 2u, 4u, 8u}) {
        PoolSizeGuard guard(threads);
        Rng rng(99);
        runs.push_back(obj.evaluateBatch(thetas, rng));
    }
    for (std::size_t r = 1; r < runs.size(); ++r) {
        ASSERT_EQ(runs[r].size(), runs[0].size());
        for (std::size_t p = 0; p < runs[0].size(); ++p) {
            EXPECT_EQ(runs[r][p].mixedEnergy, runs[0][p].mixedEnergy)
                << "probe " << p;
            EXPECT_EQ(runs[r][p].taskEnergies, runs[0][p].taskEnergies);
            EXPECT_EQ(runs[r][p].shotsUsed, runs[0][p].shotsUsed);
        }
    }
}

TEST(EvaluateBatch, ReproducesSerialEvaluateWithProbeStreams)
{
    // The documented serial reference: probe i of a batch with stream
    // base `b` evaluates exactly like evaluate(thetas[i], probeRng(b, i)).
    const ClusterObjective obj = makeObjective();
    const auto thetas =
        makeThetas(obj.ansatz().numParams(), 6, 31);

    PoolSizeGuard guard(4);
    Rng rng(7);
    const auto batch = obj.evaluateBatch(thetas, rng);

    Rng serial_rng(7);
    const std::uint64_t base = serial_rng.nextU64();
    for (std::size_t i = 0; i < thetas.size(); ++i) {
        Rng probe = ClusterObjective::probeRng(base, i);
        const ClusterEvaluation ev = obj.evaluate(thetas[i], probe);
        EXPECT_EQ(batch[i].mixedEnergy, ev.mixedEnergy) << "probe " << i;
        EXPECT_EQ(batch[i].taskEnergies, ev.taskEnergies);
        EXPECT_EQ(batch[i].shotsUsed, ev.shotsUsed);
    }
    // Both paths consumed the caller stream identically.
    EXPECT_EQ(rng.nextU64(), serial_rng.nextU64());
}

TEST(EvaluateBatch, CallerStreamAdvanceIndependentOfBatchSize)
{
    const ClusterObjective obj = makeObjective();
    Rng a(5), b(5);
    (void)obj.evaluateBatch(
        makeThetas(obj.ansatz().numParams(), 1, 1), a);
    (void)obj.evaluateBatch(
        makeThetas(obj.ansatz().numParams(), 8, 2), b);
    EXPECT_EQ(a.nextU64(), b.nextU64());
}

class ThreadedExpectationSweep
    : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(ThreadedExpectationSweep, MatchesReferenceKernels)
{
    // Threaded perStringExpectations vs the naive reference at 1e-12
    // on 12-16 qubit states, for 1/2/4/8 pool lanes.
    PoolSizeGuard guard(GetParam());
    for (int n : {12, 14, 16}) {
        Rng rng(1000 + n);
        Statevector s(n);
        for (int g = 0; g < 4 * n; ++g) {
            const int q = static_cast<int>(rng.uniformInt(n));
            s.applyRy(q, rng.uniform(-3, 3));
            s.applyCx(q, (q + 1) % n);
        }
        std::vector<PauliString> strings;
        const char ops[4] = {'I', 'X', 'Y', 'Z'};
        for (int k = 0; k < 60; ++k) {
            PauliString p(n);
            for (int q = 0; q < n; ++q)
                p.setOp(q, ops[rng.uniformInt(4)]);
            strings.push_back(p);
        }
        const auto fast = perStringExpectations(s, strings);
        const auto ref = refPerStringExpectations(s, strings);
        ASSERT_EQ(fast.size(), ref.size());
        for (std::size_t k = 0; k < fast.size(); ++k)
            EXPECT_NEAR(fast[k], ref[k], 1e-12)
                << n << " qubits, string " << k;
    }
}

INSTANTIATE_TEST_SUITE_P(Lanes, ThreadedExpectationSweep,
                         ::testing::Values(1u, 2u, 4u, 8u));

/** Quadratic with minimum at (1, -2, 1, -2, ...). */
double
quadratic(const std::vector<double> &x)
{
    double s = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double target = (i % 2 == 0) ? 1.0 : -2.0;
        s += (x[i] - target) * (x[i] - target);
    }
    return s;
}

template <typename Opt>
void
expectBatchMatchesSerial(Opt make_a, Opt make_b)
{
    auto a = make_a();
    auto b = make_b();
    a->reset(std::vector<double>(5, 0.0));
    b->reset(std::vector<double>(5, 0.0));

    int batch_calls = 0;
    std::size_t max_batch = 0;
    const BatchObjective batched =
        [&](const std::vector<std::vector<double>> &thetas) {
            ++batch_calls;
            max_batch = std::max(max_batch, thetas.size());
            std::vector<double> losses;
            for (const auto &t : thetas)
                losses.push_back(quadratic(t));
            return losses;
        };

    for (int i = 0; i < 60; ++i) {
        const double la = a->step(quadratic);
        const double lb = b->stepBatch(batched);
        ASSERT_EQ(la, lb) << "iteration " << i;
        ASSERT_EQ(a->params(), b->params()) << "iteration " << i;
        ASSERT_EQ(a->lastStepEvals(), b->lastStepEvals());
    }
    EXPECT_GT(batch_calls, 0);
    // The per-iterate probe sets actually go out batched: the largest
    // batch is the 5-dimensional problem's simplex/stencil/pair.
    EXPECT_GE(max_batch, 2u);
}

TEST(BatchOptimizers, SpsaBatchPathMatchesSerial)
{
    using Maker = std::function<std::unique_ptr<IterativeOptimizer>()>;
    const Maker make = [] {
        return std::make_unique<Spsa>(SpsaConfig{}, 21);
    };
    expectBatchMatchesSerial<Maker>(make, make);
}

TEST(BatchOptimizers, NelderMeadBatchPathMatchesSerial)
{
    using Maker = std::function<std::unique_ptr<IterativeOptimizer>()>;
    const Maker make = [] {
        return std::make_unique<NelderMead>(NelderMeadConfig{});
    };
    expectBatchMatchesSerial<Maker>(make, make);
}

TEST(BatchOptimizers, CobylaBatchPathMatchesSerial)
{
    using Maker = std::function<std::unique_ptr<IterativeOptimizer>()>;
    const Maker make = [] {
        return std::make_unique<Cobyla>(CobylaConfig{});
    };
    expectBatchMatchesSerial<Maker>(make, make);
}

TEST(BatchOptimizers, ImplicitFilteringBatchPathMatchesSerial)
{
    using Maker = std::function<std::unique_ptr<IterativeOptimizer>()>;
    const Maker make = [] {
        return std::make_unique<ImplicitFiltering>(
            ImplicitFilteringConfig{});
    };
    expectBatchMatchesSerial<Maker>(make, make);
}

TEST(BatchOptimizers, SpsaSubmitsThePairAsOneBatch)
{
    Spsa opt(SpsaConfig{}, 3);
    opt.reset(std::vector<double>(4, 0.0));
    std::vector<std::size_t> batch_sizes;
    const BatchObjective f =
        [&](const std::vector<std::vector<double>> &thetas) {
            batch_sizes.push_back(thetas.size());
            std::vector<double> losses;
            for (const auto &t : thetas)
                losses.push_back(quadratic(t));
            return losses;
        };
    opt.stepBatch(f);
    ASSERT_EQ(batch_sizes.size(), 1u);
    EXPECT_EQ(batch_sizes[0], 2u);
}

TEST(BatchOptimizers, SimplexBuildsGoOutAsOneBatch)
{
    for (const bool nelder : {true, false}) {
        std::unique_ptr<IterativeOptimizer> opt;
        if (nelder)
            opt = std::make_unique<NelderMead>(NelderMeadConfig{});
        else
            opt = std::make_unique<Cobyla>(CobylaConfig{});
        opt->reset(std::vector<double>(6, 0.0));
        std::vector<std::size_t> batch_sizes;
        const BatchObjective f =
            [&](const std::vector<std::vector<double>> &thetas) {
                batch_sizes.push_back(thetas.size());
                std::vector<double> losses;
                for (const auto &t : thetas)
                    losses.push_back(quadratic(t));
                return losses;
            };
        opt->stepBatch(f);
        ASSERT_EQ(batch_sizes.size(), 1u);
        EXPECT_EQ(batch_sizes[0], 7u); // n + 1 vertices, one batch
    }
}

TEST(TreeController, RunIsInvariantToPoolSize)
{
    // The full pipeline — sharded cluster rounds, batched probe
    // evaluation, threaded expectations — must give bit-identical
    // results at any pool size.
    const auto fam = tfimFamily(4, 0.5, 1.5, 4);
    auto tasks = makeTasks("tfim", fam, 0);
    solveGroundEnergies(tasks);
    const Ansatz ansatz = makeHardwareEfficientAnsatz(4, 2, 0);
    Spsa proto(SpsaConfig{}, 6);

    TreeVqaConfig cfg;
    cfg.shotBudget = 1ull << 62;
    cfg.maxRounds = 60;
    cfg.seed = 11;

    std::vector<TreeVqaResult> results;
    for (std::size_t threads : {1u, 4u}) {
        PoolSizeGuard guard(threads);
        TreeController controller(tasks, ansatz, proto, cfg);
        results.push_back(controller.run());
    }
    ASSERT_EQ(results[0].outcomes.size(), results[1].outcomes.size());
    for (std::size_t i = 0; i < results[0].outcomes.size(); ++i)
        EXPECT_DOUBLE_EQ(results[0].outcomes[i].bestEnergy,
                         results[1].outcomes[i].bestEnergy);
    EXPECT_EQ(results[0].totalShots, results[1].totalShots);
    EXPECT_EQ(results[0].splitCount, results[1].splitCount);
}

TEST(ShotLedger, ConcurrentChargesSumExactly)
{
    PoolSizeGuard guard(4);
    ShotLedger ledger;
    ThreadPool::global().run(256, [&](std::size_t i) {
        ledger.charge(i + 1);
    });
    EXPECT_EQ(ledger.total(), 256ull * 257ull / 2ull);
}

} // namespace
} // namespace treevqa

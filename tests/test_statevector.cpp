/**
 * @file
 * Tests for the dense statevector simulator.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "sim/reference_kernels.h"
#include "sim/statevector.h"

namespace treevqa {
namespace {

TEST(Statevector, StartsInZeroState)
{
    Statevector s(3);
    EXPECT_EQ(s.dim(), 8u);
    EXPECT_NEAR(s.probability(0), 1.0, 1e-15);
    EXPECT_NEAR(s.normSquared(), 1.0, 1e-15);
}

TEST(Statevector, SetBasisState)
{
    Statevector s(3);
    s.setBasisState(0b101);
    EXPECT_NEAR(s.probability(0b101), 1.0, 1e-15);
    EXPECT_NEAR(s.probability(0), 0.0, 1e-15);
}

TEST(Statevector, XFlipsBit)
{
    Statevector s(2);
    s.applyX(1);
    EXPECT_NEAR(s.probability(0b10), 1.0, 1e-15);
}

TEST(Statevector, HCreatesSuperpositionAndIsInvolution)
{
    Statevector s(1);
    s.applyH(0);
    EXPECT_NEAR(s.probability(0), 0.5, 1e-12);
    EXPECT_NEAR(s.probability(1), 0.5, 1e-12);
    s.applyH(0);
    EXPECT_NEAR(s.probability(0), 1.0, 1e-12);
}

TEST(Statevector, CxTruthTable)
{
    for (std::uint64_t in = 0; in < 4; ++in) {
        Statevector s(2);
        s.setBasisState(in);
        s.applyCx(0, 1); // control qubit 0, target qubit 1
        const std::uint64_t expected =
            (in & 1ull) ? (in ^ 2ull) : in;
        EXPECT_NEAR(s.probability(expected), 1.0, 1e-15)
            << "input " << in;
    }
}

TEST(Statevector, CzPhasesOnlyOnes)
{
    Statevector s(2);
    s.applyH(0);
    s.applyH(1);
    s.applyCz(0, 1);
    // Amplitudes: (1,1,1,-1)/2.
    const CVector &a = s.amplitudes();
    EXPECT_NEAR(a[3].real(), -0.5, 1e-12);
    EXPECT_NEAR(a[0].real(), 0.5, 1e-12);
}

TEST(Statevector, RxOnZeroGivesExpectedAmplitudes)
{
    const double theta = 0.7;
    Statevector s(1);
    s.applyRx(0, theta);
    const CVector &a = s.amplitudes();
    EXPECT_NEAR(a[0].real(), std::cos(theta / 2), 1e-12);
    EXPECT_NEAR(a[1].imag(), -std::sin(theta / 2), 1e-12);
}

TEST(Statevector, RyOnZeroIsRealRotation)
{
    const double theta = 1.1;
    Statevector s(1);
    s.applyRy(0, theta);
    const CVector &a = s.amplitudes();
    EXPECT_NEAR(a[0].real(), std::cos(theta / 2), 1e-12);
    EXPECT_NEAR(a[1].real(), std::sin(theta / 2), 1e-12);
    EXPECT_NEAR(a[1].imag(), 0.0, 1e-12);
}

TEST(Statevector, RzIsDiagonalPhase)
{
    const double theta = 0.9;
    Statevector s(1);
    s.applyH(0);
    s.applyRz(0, theta);
    const CVector &a = s.amplitudes();
    const double r = 1.0 / std::sqrt(2.0);
    EXPECT_NEAR(std::abs(a[0] - r * std::polar(1.0, -theta / 2)), 0.0,
                1e-12);
    EXPECT_NEAR(std::abs(a[1] - r * std::polar(1.0, theta / 2)), 0.0,
                1e-12);
}

TEST(Statevector, SAndSdgInverse)
{
    Statevector s(1);
    s.applyH(0);
    s.applyS(0);
    s.applySdg(0);
    s.applyH(0);
    EXPECT_NEAR(s.probability(0), 1.0, 1e-12);
}

TEST(Statevector, RzzEqualsRzUpToBasis)
{
    // RZZ(theta) on |00> applies phase exp(-i theta/2).
    Statevector s(2);
    s.applyRzz(0, 1, 0.8);
    EXPECT_NEAR(std::abs(s.amplitudes()[0]
                         - std::polar(1.0, -0.4)), 0.0, 1e-12);
    // On |01> the parity flips the phase sign.
    Statevector t(2);
    t.setBasisState(1);
    t.applyRzz(0, 1, 0.8);
    EXPECT_NEAR(std::abs(t.amplitudes()[1] - std::polar(1.0, 0.4)),
                0.0, 1e-12);
}

TEST(Statevector, RxxMatchesKnownAction)
{
    // exp(-i theta/2 XX)|00> = cos(theta/2)|00> - i sin(theta/2)|11>.
    const double theta = 0.6;
    Statevector s(2);
    s.applyRxx(0, 1, theta);
    const CVector &a = s.amplitudes();
    EXPECT_NEAR(std::abs(a[0] - Complex(std::cos(theta / 2), 0)), 0.0,
                1e-12);
    EXPECT_NEAR(std::abs(a[3] - Complex(0, -std::sin(theta / 2))), 0.0,
                1e-12);
}

TEST(Statevector, RyyMatchesKnownAction)
{
    // exp(-i theta/2 YY)|00> = cos(theta/2)|00> + i sin(theta/2)|11>.
    const double theta = 0.6;
    Statevector s(2);
    s.applyRyy(0, 1, theta);
    const CVector &a = s.amplitudes();
    EXPECT_NEAR(std::abs(a[0] - Complex(std::cos(theta / 2), 0)), 0.0,
                1e-12);
    EXPECT_NEAR(std::abs(a[3] - Complex(0, std::sin(theta / 2))), 0.0,
                1e-12);
}

TEST(Statevector, OverlapSquaredBasics)
{
    Statevector a(2), b(2);
    EXPECT_NEAR(a.overlapSquared(b), 1.0, 1e-12);
    b.applyX(0);
    EXPECT_NEAR(a.overlapSquared(b), 0.0, 1e-12);
}

TEST(Statevector, SampleRespectsDistribution)
{
    Statevector s(1);
    s.applyRy(0, 2.0 * std::acos(std::sqrt(0.25))); // P(0) = 0.25
    Rng rng(9);
    int zeros = 0;
    const int n = 40000;
    for (int i = 0; i < n; ++i)
        zeros += s.sample(rng) == 0;
    EXPECT_NEAR(static_cast<double>(zeros) / n, 0.25, 0.01);
}

/** Property: random circuits preserve the norm. */
class NormPreservation : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(NormPreservation, RandomCircuitKeepsUnitNorm)
{
    Rng rng(GetParam());
    const int n = 4;
    Statevector s(n);
    s.setBasisState(rng.uniformInt(16));
    for (int g = 0; g < 60; ++g) {
        const int q = static_cast<int>(rng.uniformInt(n));
        const int p = static_cast<int>((q + 1 + rng.uniformInt(n - 1)) % n);
        switch (rng.uniformInt(8)) {
          case 0: s.applyRx(q, rng.uniform(-3, 3)); break;
          case 1: s.applyRy(q, rng.uniform(-3, 3)); break;
          case 2: s.applyRz(q, rng.uniform(-3, 3)); break;
          case 3: s.applyH(q); break;
          case 4: s.applyCx(q, p); break;
          case 5: s.applyCz(q, p); break;
          case 6: s.applyRzz(q, p, rng.uniform(-3, 3)); break;
          default: s.applyS(q); break;
        }
        EXPECT_NEAR(s.normSquared(), 1.0, 1e-10);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NormPreservation,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull,
                                           5ull));

/** A pseudo-random normalized n-qubit state from a random circuit. */
Statevector
randomState(int n, std::uint64_t seed)
{
    Rng rng(seed);
    Statevector s(n);
    s.setBasisState(rng.uniformInt(std::uint64_t{1} << n));
    for (int g = 0; g < 12 * n; ++g) {
        const int q = static_cast<int>(rng.uniformInt(n));
        const int p =
            static_cast<int>((q + 1 + rng.uniformInt(n - 1)) % n);
        switch (rng.uniformInt(6)) {
          case 0: s.applyRx(q, rng.uniform(-3, 3)); break;
          case 1: s.applyRy(q, rng.uniform(-3, 3)); break;
          case 2: s.applyRz(q, rng.uniform(-3, 3)); break;
          case 3: s.applyH(q); break;
          case 4: s.applyCx(q, p); break;
          default: s.applyS(q); break;
        }
    }
    return s;
}

void
expectStatesEqual(const Statevector &a, const Statevector &b,
                  const std::string &label)
{
    ASSERT_EQ(a.dim(), b.dim());
    for (std::size_t i = 0; i < a.dim(); ++i)
        EXPECT_NEAR(std::abs(a.amplitudes()[i] - b.amplitudes()[i]),
                    0.0, 1e-12)
            << label << " amplitude " << i;
}

/**
 * Property: every optimized two-qubit kernel agrees with the naive
 * dense 4x4 matrix reference on random states, for qubit pairs in both
 * orders, adjacent and strided.
 */
class TwoQubitKernelEquivalence
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(TwoQubitKernelEquivalence, FastKernelsMatchDenseReference)
{
    const int n = 6;
    Rng rng(GetParam() * 131 + 17);
    const Statevector base = randomState(n, GetParam() * 977 + 3);

    const std::pair<int, int> pairs[] = {
        {0, 1}, {1, 0}, {0, 5}, {5, 0}, {2, 4}, {3, 2}};
    for (const auto &[a, b] : pairs) {
        const double theta = rng.uniform(-3, 3);

        Statevector fast = base, ref = base;
        fast.applyRxx(a, b, theta);
        refApplyGate2(ref, a, b, rxxMatrix(theta));
        expectStatesEqual(fast, ref, "Rxx");

        fast = base;
        ref = base;
        fast.applyRyy(a, b, theta);
        refApplyGate2(ref, a, b, ryyMatrix(theta));
        expectStatesEqual(fast, ref, "Ryy");

        fast = base;
        ref = base;
        fast.applyRzz(a, b, theta);
        refApplyGate2(ref, a, b, rzzMatrix(theta));
        expectStatesEqual(fast, ref, "Rzz");

        fast = base;
        ref = base;
        fast.applyCx(a, b);
        refApplyGate2(ref, a, b, cxMatrix());
        expectStatesEqual(fast, ref, "Cx");

        fast = base;
        ref = base;
        fast.applyCz(a, b);
        refApplyGate2(ref, a, b, czMatrix());
        expectStatesEqual(fast, ref, "Cz");
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TwoQubitKernelEquivalence,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull,
                                           6ull, 7ull, 8ull));

/** The optimized Rxx/Ryy must also match the pre-optimization
 * basis-change conjugation implementations exactly. */
TEST(Statevector, TwoQubitKernelsMatchConjugationReference)
{
    const int n = 7;
    const Statevector base = randomState(n, 42);
    Rng rng(7);
    for (int trial = 0; trial < 10; ++trial) {
        const int a = static_cast<int>(rng.uniformInt(n));
        const int b =
            static_cast<int>((a + 1 + rng.uniformInt(n - 1)) % n);
        const double theta = rng.uniform(-3, 3);

        Statevector fast = base, ref = base;
        fast.applyRxx(a, b, theta);
        refApplyRxx(ref, a, b, theta);
        expectStatesEqual(fast, ref, "Rxx-conj");

        fast = base;
        ref = base;
        fast.applyRyy(a, b, theta);
        refApplyRyy(ref, a, b, theta);
        expectStatesEqual(fast, ref, "Ryy-conj");
    }
}

/** Single-qubit stride kernels vs. the naive branch-per-element scans. */
TEST(Statevector, StrideKernelsMatchNaiveScans)
{
    const int n = 6;
    const Statevector base = randomState(n, 99);
    for (int q = 0; q < n; ++q) {
        Statevector fast = base, ref = base;
        fast.applyX(q);
        refApplyX(ref, q);
        expectStatesEqual(fast, ref, "X");

        fast = base;
        ref = base;
        fast.applyZ(q);
        refApplyZ(ref, q);
        expectStatesEqual(fast, ref, "Z");

        fast = base;
        ref = base;
        fast.applyS(q);
        refApplyS(ref, q);
        expectStatesEqual(fast, ref, "S");

        fast = base;
        ref = base;
        fast.applySdg(q);
        refApplySdg(ref, q);
        expectStatesEqual(fast, ref, "Sdg");

        fast = base;
        ref = base;
        fast.applyH(q);
        refApplyH(ref, q);
        expectStatesEqual(fast, ref, "H");
    }
}

/** 16-qubit spot check: dim = 2^16 crosses the OpenMP threshold, so
 * the parallel branches of every kernel must agree with the naive
 * references too. */
TEST(Statevector, SixteenQubitKernelsMatchReferences)
{
    const int n = 16;
    Rng rng(2026);
    Statevector fast(n), ref(n);
    const std::uint64_t init = rng.uniformInt(std::uint64_t{1} << n);
    fast.setBasisState(init);
    ref.setBasisState(init);
    for (int g = 0; g < 24; ++g) {
        const int q = static_cast<int>(rng.uniformInt(n));
        const int p =
            static_cast<int>((q + 1 + rng.uniformInt(n - 1)) % n);
        const double theta = rng.uniform(-3, 3);
        switch (rng.uniformInt(8)) {
          case 0:
            fast.applyRxx(q, p, theta);
            refApplyRxx(ref, q, p, theta);
            break;
          case 1:
            fast.applyRyy(q, p, theta);
            refApplyRyy(ref, q, p, theta);
            break;
          case 2:
            fast.applyRzz(q, p, theta);
            refApplyRzz(ref, q, p, theta);
            break;
          case 3:
            fast.applyCx(q, p);
            refApplyCx(ref, q, p);
            break;
          case 4:
            fast.applyX(q);
            refApplyX(ref, q);
            break;
          case 5:
            fast.applyZ(q);
            refApplyZ(ref, q);
            break;
          case 6:
            fast.applyH(q);
            refApplyH(ref, q);
            break;
          default:
            fast.applyS(q);
            refApplyS(ref, q);
            break;
        }
    }
    double max_err = 0.0;
    for (std::size_t i = 0; i < fast.dim(); ++i)
        max_err = std::max(
            max_err,
            std::abs(fast.amplitudes()[i] - ref.amplitudes()[i]));
    EXPECT_LT(max_err, 1e-12);
    EXPECT_NEAR(fast.normSquared(), 1.0, 1e-10);
}

TEST(Statevector, DiagonalKernelMatchesGate1)
{
    const int n = 5;
    const Statevector base = randomState(n, 1234);
    const Complex d0 = std::polar(1.0, 0.3);
    const Complex d1 = std::polar(1.0, -1.1);
    for (int q = 0; q < n; ++q) {
        Statevector fast = base, ref = base;
        fast.applyDiag1(q, d0, d1);
        ref.applyGate1(q, Gate1q{d0, Complex(0, 0), Complex(0, 0), d1});
        expectStatesEqual(fast, ref, "Diag1");
    }
}

} // namespace
} // namespace treevqa

/**
 * @file
 * Tests for the dense statevector simulator.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "sim/statevector.h"

namespace treevqa {
namespace {

TEST(Statevector, StartsInZeroState)
{
    Statevector s(3);
    EXPECT_EQ(s.dim(), 8u);
    EXPECT_NEAR(s.probability(0), 1.0, 1e-15);
    EXPECT_NEAR(s.normSquared(), 1.0, 1e-15);
}

TEST(Statevector, SetBasisState)
{
    Statevector s(3);
    s.setBasisState(0b101);
    EXPECT_NEAR(s.probability(0b101), 1.0, 1e-15);
    EXPECT_NEAR(s.probability(0), 0.0, 1e-15);
}

TEST(Statevector, XFlipsBit)
{
    Statevector s(2);
    s.applyX(1);
    EXPECT_NEAR(s.probability(0b10), 1.0, 1e-15);
}

TEST(Statevector, HCreatesSuperpositionAndIsInvolution)
{
    Statevector s(1);
    s.applyH(0);
    EXPECT_NEAR(s.probability(0), 0.5, 1e-12);
    EXPECT_NEAR(s.probability(1), 0.5, 1e-12);
    s.applyH(0);
    EXPECT_NEAR(s.probability(0), 1.0, 1e-12);
}

TEST(Statevector, CxTruthTable)
{
    for (std::uint64_t in = 0; in < 4; ++in) {
        Statevector s(2);
        s.setBasisState(in);
        s.applyCx(0, 1); // control qubit 0, target qubit 1
        const std::uint64_t expected =
            (in & 1ull) ? (in ^ 2ull) : in;
        EXPECT_NEAR(s.probability(expected), 1.0, 1e-15)
            << "input " << in;
    }
}

TEST(Statevector, CzPhasesOnlyOnes)
{
    Statevector s(2);
    s.applyH(0);
    s.applyH(1);
    s.applyCz(0, 1);
    // Amplitudes: (1,1,1,-1)/2.
    const CVector &a = s.amplitudes();
    EXPECT_NEAR(a[3].real(), -0.5, 1e-12);
    EXPECT_NEAR(a[0].real(), 0.5, 1e-12);
}

TEST(Statevector, RxOnZeroGivesExpectedAmplitudes)
{
    const double theta = 0.7;
    Statevector s(1);
    s.applyRx(0, theta);
    const CVector &a = s.amplitudes();
    EXPECT_NEAR(a[0].real(), std::cos(theta / 2), 1e-12);
    EXPECT_NEAR(a[1].imag(), -std::sin(theta / 2), 1e-12);
}

TEST(Statevector, RyOnZeroIsRealRotation)
{
    const double theta = 1.1;
    Statevector s(1);
    s.applyRy(0, theta);
    const CVector &a = s.amplitudes();
    EXPECT_NEAR(a[0].real(), std::cos(theta / 2), 1e-12);
    EXPECT_NEAR(a[1].real(), std::sin(theta / 2), 1e-12);
    EXPECT_NEAR(a[1].imag(), 0.0, 1e-12);
}

TEST(Statevector, RzIsDiagonalPhase)
{
    const double theta = 0.9;
    Statevector s(1);
    s.applyH(0);
    s.applyRz(0, theta);
    const CVector &a = s.amplitudes();
    const double r = 1.0 / std::sqrt(2.0);
    EXPECT_NEAR(std::abs(a[0] - r * std::polar(1.0, -theta / 2)), 0.0,
                1e-12);
    EXPECT_NEAR(std::abs(a[1] - r * std::polar(1.0, theta / 2)), 0.0,
                1e-12);
}

TEST(Statevector, SAndSdgInverse)
{
    Statevector s(1);
    s.applyH(0);
    s.applyS(0);
    s.applySdg(0);
    s.applyH(0);
    EXPECT_NEAR(s.probability(0), 1.0, 1e-12);
}

TEST(Statevector, RzzEqualsRzUpToBasis)
{
    // RZZ(theta) on |00> applies phase exp(-i theta/2).
    Statevector s(2);
    s.applyRzz(0, 1, 0.8);
    EXPECT_NEAR(std::abs(s.amplitudes()[0]
                         - std::polar(1.0, -0.4)), 0.0, 1e-12);
    // On |01> the parity flips the phase sign.
    Statevector t(2);
    t.setBasisState(1);
    t.applyRzz(0, 1, 0.8);
    EXPECT_NEAR(std::abs(t.amplitudes()[1] - std::polar(1.0, 0.4)),
                0.0, 1e-12);
}

TEST(Statevector, RxxMatchesKnownAction)
{
    // exp(-i theta/2 XX)|00> = cos(theta/2)|00> - i sin(theta/2)|11>.
    const double theta = 0.6;
    Statevector s(2);
    s.applyRxx(0, 1, theta);
    const CVector &a = s.amplitudes();
    EXPECT_NEAR(std::abs(a[0] - Complex(std::cos(theta / 2), 0)), 0.0,
                1e-12);
    EXPECT_NEAR(std::abs(a[3] - Complex(0, -std::sin(theta / 2))), 0.0,
                1e-12);
}

TEST(Statevector, RyyMatchesKnownAction)
{
    // exp(-i theta/2 YY)|00> = cos(theta/2)|00> + i sin(theta/2)|11>.
    const double theta = 0.6;
    Statevector s(2);
    s.applyRyy(0, 1, theta);
    const CVector &a = s.amplitudes();
    EXPECT_NEAR(std::abs(a[0] - Complex(std::cos(theta / 2), 0)), 0.0,
                1e-12);
    EXPECT_NEAR(std::abs(a[3] - Complex(0, std::sin(theta / 2))), 0.0,
                1e-12);
}

TEST(Statevector, OverlapSquaredBasics)
{
    Statevector a(2), b(2);
    EXPECT_NEAR(a.overlapSquared(b), 1.0, 1e-12);
    b.applyX(0);
    EXPECT_NEAR(a.overlapSquared(b), 0.0, 1e-12);
}

TEST(Statevector, SampleRespectsDistribution)
{
    Statevector s(1);
    s.applyRy(0, 2.0 * std::acos(std::sqrt(0.25))); // P(0) = 0.25
    Rng rng(9);
    int zeros = 0;
    const int n = 40000;
    for (int i = 0; i < n; ++i)
        zeros += s.sample(rng) == 0;
    EXPECT_NEAR(static_cast<double>(zeros) / n, 0.25, 0.01);
}

/** Property: random circuits preserve the norm. */
class NormPreservation : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(NormPreservation, RandomCircuitKeepsUnitNorm)
{
    Rng rng(GetParam());
    const int n = 4;
    Statevector s(n);
    s.setBasisState(rng.uniformInt(16));
    for (int g = 0; g < 60; ++g) {
        const int q = static_cast<int>(rng.uniformInt(n));
        const int p = static_cast<int>((q + 1 + rng.uniformInt(n - 1)) % n);
        switch (rng.uniformInt(8)) {
          case 0: s.applyRx(q, rng.uniform(-3, 3)); break;
          case 1: s.applyRy(q, rng.uniform(-3, 3)); break;
          case 2: s.applyRz(q, rng.uniform(-3, 3)); break;
          case 3: s.applyH(q); break;
          case 4: s.applyCx(q, p); break;
          case 5: s.applyCz(q, p); break;
          case 6: s.applyRzz(q, p, rng.uniform(-3, 3)); break;
          default: s.applyS(q); break;
        }
        EXPECT_NEAR(s.normSquared(), 1.0, 1e-10);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NormPreservation,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull,
                                           5ull));

} // namespace
} // namespace treevqa

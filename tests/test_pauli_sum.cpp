/**
 * @file
 * Tests for PauliSum: term bookkeeping, padding/alignment, the mixed
 * Hamiltonian (Section 5.2.1) and the l1 distance (Section 5.2.4).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "pauli/pauli_sum.h"

namespace treevqa {
namespace {

TEST(PauliSum, AddMergesEqualStrings)
{
    PauliSum h(2);
    h.add(0.5, "XZ");
    h.add(0.25, "XZ");
    EXPECT_EQ(h.numTerms(), 1u);
    EXPECT_DOUBLE_EQ(h.terms()[0].coefficient, 0.75);
}

TEST(PauliSum, CompressDropsSmallTerms)
{
    PauliSum h(1);
    h.add(1.0, "X");
    h.add(1e-15, "Z");
    h.compress();
    EXPECT_EQ(h.numTerms(), 1u);
    EXPECT_EQ(h.terms()[0].string.toLabel(), "X");
}

TEST(PauliSum, AddScaledMergesAcrossSums)
{
    PauliSum a(2), b(2);
    a.add(1.0, "XI");
    a.add(2.0, "ZZ");
    b.add(3.0, "ZZ");
    b.add(4.0, "IY");
    a.addScaled(b, 0.5);
    EXPECT_DOUBLE_EQ(a.coefficientOf(PauliString::fromLabel("ZZ")), 3.5);
    EXPECT_DOUBLE_EQ(a.coefficientOf(PauliString::fromLabel("IY")), 2.0);
    EXPECT_DOUBLE_EQ(a.coefficientOf(PauliString::fromLabel("XI")), 1.0);
}

TEST(PauliSum, L1NormsAndTrace)
{
    PauliSum h(2);
    h.add(-3.0, "II");
    h.add(2.0, "XZ");
    h.add(-1.5, "ZI");
    EXPECT_DOUBLE_EQ(h.l1Norm(), 3.5);
    EXPECT_DOUBLE_EQ(h.l1NormWithIdentity(), 6.5);
    EXPECT_DOUBLE_EQ(h.normalizedTrace(), -3.0);
    EXPECT_EQ(h.numMeasuredTerms(), 2u);
}

TEST(PauliSum, ApplyToKnownAction)
{
    // H = X on 1 qubit: H|0> = |1>.
    PauliSum h(1);
    h.add(1.0, "X");
    CVector in = {Complex(1, 0), Complex(0, 0)}, out;
    h.applyTo(in, out);
    EXPECT_NEAR(std::abs(out[0]), 0.0, 1e-15);
    EXPECT_NEAR(std::abs(out[1] - Complex(1, 0)), 0.0, 1e-15);

    // H = Y: Y|0> = i|1>.
    PauliSum hy(1);
    hy.add(1.0, "Y");
    hy.applyTo(in, out);
    EXPECT_NEAR(std::abs(out[1] - Complex(0, 1)), 0.0, 1e-15);

    // H = Z: Z|1> = -|1>.
    PauliSum hz(1);
    hz.add(1.0, "Z");
    CVector one = {Complex(0, 0), Complex(1, 0)};
    hz.applyTo(one, out);
    EXPECT_NEAR(std::abs(out[1] + Complex(1, 0)), 0.0, 1e-15);
}

TEST(PauliSum, ExpectationOnBasisStates)
{
    PauliSum h(2);
    h.add(0.7, "ZI");
    h.add(-0.2, "IZ");
    h.add(5.0, "II");
    // |01> (qubit 0 set): <Z0> = -1, <Z1> = +1.
    CVector state(4, Complex(0, 0));
    state[1] = 1.0;
    EXPECT_NEAR(h.expectation(state), 5.0 - 0.7 - 0.2, 1e-12);
}

TEST(PauliSum, ExpectationOfOffDiagonalOnPlusState)
{
    // <+|X|+> = 1.
    PauliSum h(1);
    h.add(1.0, "X");
    const double r = 1.0 / std::sqrt(2.0);
    CVector plus = {Complex(r, 0), Complex(r, 0)};
    EXPECT_NEAR(h.expectation(plus), 1.0, 1e-12);
}

TEST(AlignTerms, PadsWithZeros)
{
    PauliSum a(2), b(2);
    a.add(1.0, "XI");
    a.add(2.0, "ZZ");
    b.add(3.0, "ZZ");
    b.add(4.0, "IY");

    const AlignedTerms aligned = alignTerms({a, b});
    EXPECT_EQ(aligned.strings.size(), 3u);
    ASSERT_EQ(aligned.coefficients.size(), 2u);

    // Each row recombines to its own Hamiltonian.
    for (std::size_t k = 0; k < aligned.strings.size(); ++k) {
        EXPECT_DOUBLE_EQ(aligned.coefficients[0][k],
                         a.coefficientOf(aligned.strings[k]));
        EXPECT_DOUBLE_EQ(aligned.coefficients[1][k],
                         b.coefficientOf(aligned.strings[k]));
    }
}

TEST(AlignTerms, DeterministicOrdering)
{
    PauliSum a(3), b(3);
    a.add(1.0, "XII");
    b.add(1.0, "IIZ");
    const AlignedTerms x = alignTerms({a, b});
    const AlignedTerms y = alignTerms({a, b});
    ASSERT_EQ(x.strings.size(), y.strings.size());
    for (std::size_t k = 0; k < x.strings.size(); ++k)
        EXPECT_EQ(x.strings[k], y.strings[k]);
}

TEST(MixedHamiltonian, IsCoefficientAverage)
{
    PauliSum a(2), b(2);
    a.add(2.0, "ZI");
    a.add(1.0, "XX");
    b.add(4.0, "ZI");

    const PauliSum mixed = mixedHamiltonian({a, b});
    EXPECT_DOUBLE_EQ(
        mixed.coefficientOf(PauliString::fromLabel("ZI")), 3.0);
    EXPECT_DOUBLE_EQ(
        mixed.coefficientOf(PauliString::fromLabel("XX")), 0.5);
}

TEST(MixedHamiltonian, SingleInputIsIdentityOp)
{
    PauliSum a(2);
    a.add(1.25, "YZ");
    const PauliSum mixed = mixedHamiltonian({a});
    EXPECT_EQ(mixed.numTerms(), 1u);
    EXPECT_DOUBLE_EQ(
        mixed.coefficientOf(PauliString::fromLabel("YZ")), 1.25);
}

TEST(L1Distance, HandComputed)
{
    PauliSum a(2), b(2);
    a.add(1.0, "XI");
    a.add(2.0, "ZZ");
    b.add(3.0, "ZZ");
    b.add(4.0, "IY");
    // |1-0| + |2-3| + |0-4| = 6.
    EXPECT_DOUBLE_EQ(l1Distance(a, b), 6.0);
}

TEST(L1Distance, MetricProperties)
{
    PauliSum a(2), b(2), c(2);
    a.add(1.0, "XI");
    b.add(2.0, "XI");
    c.add(1.0, "XI");
    c.add(0.5, "ZZ");
    EXPECT_DOUBLE_EQ(l1Distance(a, a), 0.0);
    EXPECT_DOUBLE_EQ(l1Distance(a, b), l1Distance(b, a));
    // Triangle inequality.
    EXPECT_LE(l1Distance(a, c),
              l1Distance(a, b) + l1Distance(b, c) + 1e-12);
}

TEST(L1Distance, BoundsOperatorNormDifference)
{
    // || H_a - H_b ||_op <= l1 distance: check via the largest
    // |eigenvalue| of the difference on a small example.
    PauliSum a(1), b(1);
    a.add(1.0, "X");
    b.add(0.2, "X");
    b.add(0.3, "Z");
    // Difference = 0.8 X - 0.3 Z, operator norm sqrt(0.64 + 0.09).
    const double op_norm = std::sqrt(0.8 * 0.8 + 0.3 * 0.3);
    EXPECT_LE(op_norm, l1Distance(a, b) + 1e-12);
}

TEST(PauliSum, ScaleCoefficients)
{
    PauliSum h(1);
    h.add(2.0, "X");
    h.scaleCoefficients(-0.5);
    EXPECT_DOUBLE_EQ(h.terms()[0].coefficient, -1.0);
}

TEST(PauliSum, ToStringMentionsShape)
{
    PauliSum h(2);
    h.add(1.0, "XZ");
    const std::string s = h.toString();
    EXPECT_NE(s.find("2 qubits"), std::string::npos);
    EXPECT_NE(s.find("XZ"), std::string::npos);
}

} // namespace
} // namespace treevqa

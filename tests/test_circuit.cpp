/**
 * @file
 * Tests for the circuit IR, parameter binding and the Pauli-exponential
 * primitive.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/circuit.h"
#include "common/rng.h"
#include "pauli/pauli_sum.h"

namespace treevqa {
namespace {

TEST(Circuit, ParamAllocation)
{
    Circuit c(2);
    EXPECT_EQ(c.addParam(), 0);
    EXPECT_EQ(c.addParam(), 1);
    EXPECT_EQ(c.numParams(), 2);
}

TEST(Circuit, FixedAngleRotation)
{
    Circuit c(1);
    c.rx(0, 1.234);
    Statevector s(1);
    c.apply(s, {});
    Statevector ref(1);
    ref.applyRx(0, 1.234);
    EXPECT_NEAR(s.overlapSquared(ref), 1.0, 1e-12);
}

TEST(Circuit, ParamBindingWithScaleAndDefault)
{
    Circuit c(1);
    const int p = c.addParam();
    c.ryParam(0, p, 2.0); // angle = 2 * theta
    Statevector s(1);
    c.apply(s, {0.4});
    Statevector ref(1);
    ref.applyRy(0, 0.8);
    EXPECT_NEAR(s.overlapSquared(ref), 1.0, 1e-12);
}

TEST(Circuit, SharedParamAcrossGates)
{
    Circuit c(2);
    const int p = c.addParam();
    c.rxParam(0, p);
    c.rxParam(1, p);
    Statevector s(2);
    c.apply(s, {0.7});
    Statevector ref(2);
    ref.applyRx(0, 0.7);
    ref.applyRx(1, 0.7);
    EXPECT_NEAR(s.overlapSquared(ref), 1.0, 1e-12);
}

TEST(Circuit, TwoQubitGateCounting)
{
    Circuit c(3);
    c.h(0);
    c.cx(0, 1);
    c.cz(1, 2);
    c.rzz(0, 2, 0.1);
    EXPECT_EQ(c.numTwoQubitGates(), 3u);
    EXPECT_EQ(c.numGates(), 4u);
}

TEST(Circuit, SummaryMentionsCounts)
{
    Circuit c(3);
    c.h(0);
    const std::string s = c.summary();
    EXPECT_NE(s.find("3q"), std::string::npos);
    EXPECT_NE(s.find("1 gates"), std::string::npos);
}

/**
 * The Pauli-exponential identity: exp(-i a/2 P)|psi> =
 * cos(a/2)|psi> - i sin(a/2) P|psi>, verifiable with the PauliSum
 * applyTo machinery for any string P.
 */
void
checkPauliExponential(const std::string &label, double angle,
                      std::uint64_t seed)
{
    const int n = static_cast<int>(label.size());
    const PauliString p = PauliString::fromLabel(label);

    // Random product-ish start state via rotations.
    Rng rng(seed);
    Statevector psi(n);
    for (int q = 0; q < n; ++q) {
        psi.applyRy(q, rng.uniform(-2, 2));
        psi.applyRz(q, rng.uniform(-2, 2));
    }

    // Circuit route.
    Circuit c(n);
    const int param = c.addParam();
    c.pauliExponential(p, param);
    Statevector circuit_state = psi;
    c.apply(circuit_state, {angle});

    // Analytic route.
    PauliSum ps(n);
    ps.add(1.0, p);
    CVector p_psi;
    ps.applyTo(psi.amplitudes(), p_psi);
    const Complex cos_part(std::cos(angle / 2), 0.0);
    const Complex sin_part(0.0, -std::sin(angle / 2));
    CVector expected(psi.dim());
    for (std::size_t i = 0; i < psi.dim(); ++i)
        expected[i] =
            cos_part * psi.amplitudes()[i] + sin_part * p_psi[i];

    for (std::size_t i = 0; i < psi.dim(); ++i)
        EXPECT_NEAR(std::abs(circuit_state.amplitudes()[i]
                             - expected[i]), 0.0, 1e-10)
            << label << " angle " << angle;
}

TEST(PauliExponential, SingleZIsRz)
{
    checkPauliExponential("Z", 0.77, 1);
}

TEST(PauliExponential, SingleXAndY)
{
    checkPauliExponential("X", -1.3, 2);
    checkPauliExponential("Y", 0.45, 3);
}

TEST(PauliExponential, TwoQubitStrings)
{
    checkPauliExponential("XX", 0.6, 4);
    checkPauliExponential("YZ", -0.9, 5);
    checkPauliExponential("ZY", 1.7, 6);
}

TEST(PauliExponential, WeightFourChemistryString)
{
    checkPauliExponential("XXYY", 0.35, 7);
    checkPauliExponential("YXYX", -0.8, 8);
}

TEST(PauliExponential, StringWithIdentityGaps)
{
    checkPauliExponential("XIZIY", 0.52, 9);
}

TEST(PauliExponential, IdentityStringIsNoOp)
{
    Circuit c(2);
    const int p = c.addParam();
    c.pauliExponential(PauliString(2), p);
    EXPECT_EQ(c.numGates(), 0u);
}

/** Angle sweep on a weight-3 string. */
class ExponentialAngleSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(ExponentialAngleSweep, MatchesAnalyticForm)
{
    checkPauliExponential("XZY", GetParam(), 42);
}

INSTANTIATE_TEST_SUITE_P(Angles, ExponentialAngleSweep,
                         ::testing::Values(-3.0, -1.0, 0.0, 0.3, 1.6,
                                           3.1));

/**
 * Property: the fused Circuit::apply matches unfused gate-by-gate
 * application on random circuits mixing every gate op, including long
 * single-qubit runs and diagonal blocks that the fusion pass defers
 * across Cz/Rzz/Cx.
 */
class FusionEquivalence : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(FusionEquivalence, FusedApplyMatchesUnfused)
{
    Rng rng(GetParam() * 313 + 29);
    const int n = 5;
    Circuit c(n);
    for (int g = 0; g < 120; ++g) {
        const int q = static_cast<int>(rng.uniformInt(n));
        const int p =
            static_cast<int>((q + 1 + rng.uniformInt(n - 1)) % n);
        switch (rng.uniformInt(12)) {
          case 0: c.rx(q, rng.uniform(-3, 3)); break;
          case 1: c.ry(q, rng.uniform(-3, 3)); break;
          case 2: c.rz(q, rng.uniform(-3, 3)); break;
          case 3: c.h(q); break;
          case 4: c.x(q); break;
          case 5: c.s(q); break;
          case 6: c.sdg(q); break;
          case 7: c.cx(q, p); break;
          case 8: c.cz(q, p); break;
          case 9: c.rzz(q, p, rng.uniform(-3, 3)); break;
          // Bias toward consecutive rotations so fusion runs form.
          case 10: c.rz(q, rng.uniform(-3, 3));
                   c.rz(q, rng.uniform(-3, 3)); break;
          default: c.ry(q, rng.uniform(-3, 3));
                   c.ry(q, rng.uniform(-3, 3)); break;
        }
    }

    Statevector fused(n);
    c.apply(fused, {});

    // Unfused reference: one kernel call per instruction.
    Statevector ref(n);
    for (const auto &g : c.gates()) {
        const double angle = g.offset;
        switch (g.op) {
          case GateOp::Rx: ref.applyRx(g.q0, angle); break;
          case GateOp::Ry: ref.applyRy(g.q0, angle); break;
          case GateOp::Rz: ref.applyRz(g.q0, angle); break;
          case GateOp::H: ref.applyH(g.q0); break;
          case GateOp::X: ref.applyX(g.q0); break;
          case GateOp::S: ref.applyS(g.q0); break;
          case GateOp::Sdg: ref.applySdg(g.q0); break;
          case GateOp::Cx: ref.applyCx(g.q0, g.q1); break;
          case GateOp::Cz: ref.applyCz(g.q0, g.q1); break;
          case GateOp::Rzz: ref.applyRzz(g.q0, g.q1, angle); break;
          case GateOp::Rxx: ref.applyRxx(g.q0, g.q1, angle); break;
          case GateOp::Ryy: ref.applyRyy(g.q0, g.q1, angle); break;
        }
    }

    for (std::size_t i = 0; i < fused.dim(); ++i)
        EXPECT_NEAR(std::abs(fused.amplitudes()[i]
                             - ref.amplitudes()[i]),
                    0.0, 1e-12)
            << "amplitude " << i;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FusionEquivalence,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull,
                                           6ull, 7ull, 8ull));

} // namespace
} // namespace treevqa

/**
 * @file
 * Tests for the causal event journal: hybrid-logical-clock merge and
 * monotonicity under injected wall-clock skew, the CRC'd emit/flush/
 * read round trip, fail-closed behaviour of the "event.append" fault
 * site, once-only quarantine of torn journal tails, and the
 * byte-stability of `--timeline` output across journal read orders
 * after a fork+SIGKILL lease handoff.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <csignal>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "common/event_log.h"
#include "common/fault_injection.h"
#include "common/file_util.h"
#include "common/json.h"
#include "common/metrics.h"

namespace treevqa {
namespace {

std::filesystem::path
scratchDir(const std::string &name)
{
    const std::filesystem::path dir =
        std::filesystem::path(::testing::TempDir()) / ("evl_" + name);
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

/** Fault injection, the metrics registry and the process event log
 * are process-wide: restore all three on the way out, pass or fail. */
class EventLogTest : public ::testing::Test
{
  protected:
    void
    TearDown() override
    {
        FaultInjection::instance().disarm();
        EventLog::instance().close();
        MetricsRegistry::instance().reset();
    }
};

// ------------------------------------------------------- hybrid clock

TEST_F(EventLogTest, TickStaysMonotonicWhenWallClockRunsBackwards)
{
    HlcClock clock("w0-p1");
    const Hlc a = clock.tick(1000);
    const Hlc b = clock.tick(900); // system clock stepped back
    const Hlc c = clock.tick(1000);
    const Hlc d = clock.tick(2000);
    EXPECT_TRUE(hlcLess(a, b));
    EXPECT_TRUE(hlcLess(b, c));
    EXPECT_TRUE(hlcLess(c, d));
    // The wall component holds at the max seen; the counter breaks
    // the ties the stalled wall would otherwise create.
    EXPECT_EQ(a.wallMs, 1000);
    EXPECT_EQ(a.counter, 0);
    EXPECT_EQ(b.wallMs, 1000);
    EXPECT_EQ(b.counter, 1);
    EXPECT_EQ(d.wallMs, 2000);
    EXPECT_EQ(d.counter, 0);
}

TEST_F(EventLogTest, ObserveMergeOrdersHandoffDespiteSkew)
{
    // Worker a's clock runs 5 s ahead of worker b's.
    HlcClock a("a-p1");
    HlcClock b("b-p1");
    const Hlc last_renewal = a.tick(10000);
    // b reads a's claim stamp before reaping; merging pushes b past
    // it even though b's physical clock is far behind.
    const Hlc merged = b.observe(last_renewal, 5000);
    EXPECT_TRUE(hlcLess(last_renewal, merged));
    EXPECT_EQ(merged.wallMs, 10000);
    EXPECT_EQ(merged.counter, last_renewal.counter + 1);
    // And every later local tick of b still compares greater.
    const Hlc reap = b.tick(5001);
    EXPECT_TRUE(hlcLess(merged, reap));

    // Equal walls on both sides: counter jumps past the max.
    const Hlc back = a.observe(reap, 10000);
    EXPECT_TRUE(hlcLess(reap, back));
    EXPECT_EQ(back.counter, reap.counter + 1);
}

TEST_F(EventLogTest, HlcKeyRoundTripsAndAcceptsPartialCursors)
{
    Hlc h;
    h.wallMs = 123456;
    h.counter = 7;
    h.origin = "w0-p42";
    Hlc parsed;
    ASSERT_TRUE(parseHlcKey(hlcKey(h), parsed));
    EXPECT_EQ(parsed.wallMs, 123456);
    EXPECT_EQ(parsed.counter, 7);
    EXPECT_EQ(parsed.origin, "w0-p42");
    // "<wallMs>" alone is an inclusive lower-bound cursor.
    ASSERT_TRUE(parseHlcKey("5000", parsed));
    EXPECT_EQ(parsed.wallMs, 5000);
    EXPECT_EQ(parsed.counter, 0);
    EXPECT_TRUE(parsed.origin.empty());
    EXPECT_FALSE(parseHlcKey("not-a-key", parsed));
    EXPECT_FALSE(parseHlcKey("", parsed));
}

// ---------------------------------------------------- writer / reader

TEST_F(EventLogTest, EmitFlushReadRoundTripsWithCrc)
{
    const auto dir = scratchDir("roundtrip");
    EventLog log;
    log.open(dir.string(), "w0");
    JsonValue detail = JsonValue::object();
    detail.set("name", JsonValue(std::string("job0")));
    const Hlc stamp = log.emit(event_type::kJobClaimed, "fp0",
                               std::move(detail));
    EXPECT_FALSE(stamp.empty());
    log.emit(event_type::kJobCompleted, "fp0");
    EXPECT_EQ(log.buffered(), 2u);
    EXPECT_TRUE(log.flush());
    EXPECT_EQ(log.buffered(), 0u);

    EventReadStats stats;
    const std::vector<SweepEvent> events =
        readSweepEvents(dir.string(), &stats);
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(stats.files, 1u);
    EXPECT_EQ(stats.corruptLines, 0u);
    EXPECT_EQ(events[0].type, event_type::kJobClaimed);
    EXPECT_EQ(events[0].worker, "w0");
    EXPECT_EQ(events[0].job, "fp0");
    EXPECT_EQ(events[0].detail.at("name").asString(), "job0");
    EXPECT_EQ(events[1].type, event_type::kJobCompleted);
    EXPECT_TRUE(hlcLess(events[0].hlc, events[1].hlc));
    log.close();
}

TEST_F(EventLogTest, AppendFaultFailsClosedAndRecovers)
{
    const auto dir = scratchDir("fault");
    EventLog log;
    log.open(dir.string(), "w1");
    log.emit(event_type::kLeaseAcquired, "fp1");
    FaultInjection::instance().arm(
        R"({"faults": [{"site": "event.append",
        "action": "fail-errno", "errno": "EIO", "hit": 1}]})");
    // The batch is dropped, not retried forever and never thrown
    // into protocol code.
    EXPECT_FALSE(log.flush());
    EXPECT_EQ(log.buffered(), 0u);
    FaultInjection::instance().disarm();

    log.emit(event_type::kLeaseRenewed, "fp1");
    EXPECT_TRUE(log.flush());
    const std::vector<SweepEvent> events =
        readSweepEvents(dir.string());
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].type, event_type::kLeaseRenewed);
    log.close();
}

TEST_F(EventLogTest, TornTailLineIsQuarantinedExactlyOnce)
{
    const auto dir = scratchDir("torn");
    EventLog log;
    log.open(dir.string(), "w2");
    log.emit(event_type::kJobClaimed, "fpA");
    log.emit(event_type::kJobCompleted, "fpA");
    ASSERT_TRUE(log.flush());
    const std::string journal = log.path();
    log.close();

    // Tear the tail as a mid-append kill would: chop the last line.
    std::string text;
    ASSERT_TRUE(readTextFile(journal, text));
    ASSERT_GT(text.size(), 20u);
    text.resize(text.size() - 20);
    {
        std::ofstream out(journal,
                          std::ios::binary | std::ios::trunc);
        out << text;
    }

    EventReadStats first_stats, second_stats;
    const std::vector<SweepEvent> first =
        readEventJournal(journal, &first_stats);
    const std::vector<SweepEvent> second =
        readEventJournal(journal, &second_stats);
    ASSERT_EQ(first.size(), 1u);
    EXPECT_EQ(first[0].type, event_type::kJobClaimed);
    EXPECT_EQ(first_stats.corruptLines, 1u);
    // The second read still reports the corrupt line...
    EXPECT_EQ(second.size(), 1u);
    EXPECT_EQ(second_stats.corruptLines, 1u);

    // ...but the quarantine envelope was appended exactly once.
    const std::filesystem::path qfile = dir / "events" / "quarantine"
        / std::filesystem::path(journal).filename();
    std::string qtext;
    ASSERT_TRUE(readTextFile(qfile.string(), qtext));
    EXPECT_EQ(std::count(qtext.begin(), qtext.end(), '\n'), 1);
    const JsonValue envelope =
        JsonValue::parse(qtext.substr(0, qtext.find('\n')));
    EXPECT_EQ(envelope.at("line").asInt(), 2);
}

// ------------------------------------------------- timeline stability

TEST_F(EventLogTest, TimelineByteIdenticalAcrossJournalReadOrders)
{
    const auto dir = scratchDir("handoff");
    const std::string fp = "deadbeefcafef00d";

    // First incarnation: a forked child claims the job, checkpoints,
    // and dies to SIGKILL with its journal flushed — the same shape
    // the supervisor's kill-storm drill produces.
    const pid_t child = ::fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        EventLog log;
        log.open(dir.string(), "wa");
        log.emit(event_type::kJobClaimed, fp);
        log.emit(event_type::kJobCheckpointed, fp);
        log.flush();
        ::raise(SIGKILL);
        std::_Exit(99); // unreachable
    }
    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFSIGNALED(status));
    ASSERT_EQ(WTERMSIG(status), SIGKILL);

    // The survivor observes the dead incarnation's last stamp (as the
    // reaper does from the claim file) and finishes the job.
    const std::vector<SweepEvent> dead =
        readSweepEvents(dir.string());
    ASSERT_EQ(dead.size(), 2u);
    HlcClock::instance().observe(dead.back().hlc);
    EventLog log;
    log.open(dir.string(), "wb");
    log.emit(event_type::kLeaseReaped, fp);
    log.emit(event_type::kJobResumed, fp);
    log.emit(event_type::kJobCompleted, fp);
    ASSERT_TRUE(log.flush());
    log.close();

    std::vector<std::string> files;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir / "events"))
        if (entry.path().extension() == ".jsonl")
            files.push_back(entry.path().string());
    ASSERT_EQ(files.size(), 2u);
    std::sort(files.begin(), files.end());

    std::vector<SweepEvent> forward;
    for (const std::string &file : files) {
        const std::vector<SweepEvent> part = readEventJournal(file);
        forward.insert(forward.end(), part.begin(), part.end());
    }
    std::vector<SweepEvent> reversed;
    for (auto it = files.rbegin(); it != files.rend(); ++it) {
        const std::vector<SweepEvent> part = readEventJournal(*it);
        reversed.insert(reversed.end(), part.begin(), part.end());
    }

    const std::string t1 = formatTimeline(forward, fp);
    const std::string t2 = formatTimeline(reversed, fp);
    EXPECT_EQ(t1, t2);

    // And the biography reads in causal order: the handoff chain
    // spans both incarnations.
    const std::size_t claimed = t1.find("job.claimed");
    const std::size_t checkpointed = t1.find("job.checkpointed");
    const std::size_t reaped = t1.find("lease.reaped");
    const std::size_t resumed = t1.find("job.resumed");
    const std::size_t completed = t1.find("job.completed");
    ASSERT_NE(claimed, std::string::npos);
    ASSERT_NE(completed, std::string::npos);
    EXPECT_LT(claimed, checkpointed);
    EXPECT_LT(checkpointed, reaped);
    EXPECT_LT(reaped, resumed);
    EXPECT_LT(resumed, completed);
}

} // namespace
} // namespace treevqa

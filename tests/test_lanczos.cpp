/**
 * @file
 * Tests for the Lanczos ground-state solver against exactly-known
 * spectra.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "ham/spin_chains.h"
#include "linalg/jacobi.h"
#include "linalg/lanczos.h"
#include "pauli/pauli_sum.h"

namespace treevqa {
namespace {

TEST(Lanczos, DiagonalOperator)
{
    // H = diag(3, -1, 4, 2): ground value -1, eigenvector e_1.
    const std::vector<double> diag = {3.0, -1.0, 4.0, 2.0};
    const MatVec matvec = [&](const CVector &x, CVector &y) {
        y.resize(x.size());
        for (std::size_t i = 0; i < x.size(); ++i)
            y[i] = diag[i] * x[i];
    };
    Rng rng(1);
    const LanczosResult res = lanczosGroundState(4, matvec, rng);
    EXPECT_TRUE(res.converged);
    EXPECT_NEAR(res.eigenvalue, -1.0, 1e-9);
    EXPECT_NEAR(std::norm(res.eigenvector[1]), 1.0, 1e-8);
}

TEST(Lanczos, SingleQubitPauliX)
{
    PauliSum h(1);
    h.add(1.0, "X");
    const MatVec matvec = [&](const CVector &x, CVector &y) {
        h.applyTo(x, y);
    };
    Rng rng(2);
    const LanczosResult res = lanczosGroundState(2, matvec, rng);
    EXPECT_NEAR(res.eigenvalue, -1.0, 1e-10);
}

TEST(Lanczos, MatchesDenseDiagonalizationTfim)
{
    // 3-site TFIM is real symmetric in the computational basis: build
    // the dense matrix column by column and cross-check with Jacobi.
    const PauliSum h = transverseFieldIsing(3, 1.0, 0.7);
    const std::size_t dim = 8;

    Matrix dense(dim, dim, 0.0);
    for (std::size_t col = 0; col < dim; ++col) {
        CVector e(dim, Complex(0, 0)), out;
        e[col] = 1.0;
        h.applyTo(e, out);
        for (std::size_t row = 0; row < dim; ++row) {
            EXPECT_NEAR(out[row].imag(), 0.0, 1e-12);
            dense(row, col) = out[row].real();
        }
    }
    const EigenDecomposition ed = jacobiEigen(dense);

    const MatVec matvec = [&](const CVector &x, CVector &y) {
        h.applyTo(x, y);
    };
    Rng rng(3);
    const LanczosResult res = lanczosGroundState(dim, matvec, rng);
    EXPECT_TRUE(res.converged);
    EXPECT_NEAR(res.eigenvalue, ed.values[0], 1e-9);
}

TEST(Lanczos, EigenvectorSatisfiesEquation)
{
    const PauliSum h = xxzChain(4, 1.0, 0.5);
    const std::size_t dim = 16;
    const MatVec matvec = [&](const CVector &x, CVector &y) {
        h.applyTo(x, y);
    };
    Rng rng(4);
    const LanczosResult res = lanczosGroundState(dim, matvec, rng);
    ASSERT_TRUE(res.converged);

    CVector hv;
    h.applyTo(res.eigenvector, hv);
    for (std::size_t i = 0; i < dim; ++i) {
        EXPECT_NEAR(hv[i].real(), res.eigenvalue
                    * res.eigenvector[i].real(), 1e-7);
        EXPECT_NEAR(hv[i].imag(), res.eigenvalue
                    * res.eigenvector[i].imag(), 1e-7);
    }
}

TEST(Lanczos, ResidualReported)
{
    const PauliSum h = transverseFieldIsing(4, 1.0, 1.0);
    const MatVec matvec = [&](const CVector &x, CVector &y) {
        h.applyTo(x, y);
    };
    Rng rng(5);
    const LanczosResult res = lanczosGroundState(16, matvec, rng);
    EXPECT_TRUE(res.converged);
    EXPECT_LT(res.residual, 1e-9);
    EXPECT_GT(res.krylovDim, 1);
}

/** Known closed form: single-spin field H = -h X has E0 = -h. */
class LanczosFieldSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(LanczosFieldSweep, TwoSiteTfimClosedForm)
{
    // Open 2-site TFIM: H = -Z0 Z1 - h (X0 + X1).
    // Closed form ground energy: -sqrt(1 + 4 h^2 + ...) — avoid
    // rederiving; instead verify against dense diagonalization.
    const double h_field = GetParam();
    const PauliSum h = transverseFieldIsing(2, 1.0, h_field);
    Matrix dense(4, 4, 0.0);
    for (std::size_t col = 0; col < 4; ++col) {
        CVector e(4, Complex(0, 0)), out;
        e[col] = 1.0;
        h.applyTo(e, out);
        for (std::size_t row = 0; row < 4; ++row)
            dense(row, col) = out[row].real();
    }
    const double exact = jacobiEigen(dense).values[0];

    const MatVec matvec = [&](const CVector &x, CVector &y) {
        h.applyTo(x, y);
    };
    Rng rng(6);
    EXPECT_NEAR(lanczosGroundState(4, matvec, rng).eigenvalue, exact,
                1e-9);
}

INSTANTIATE_TEST_SUITE_P(Fields, LanczosFieldSweep,
                         ::testing::Values(0.0, 0.3, 0.7, 1.0, 1.5,
                                           3.0));

} // namespace
} // namespace treevqa

/**
 * @file
 * Tests for the evaluation metrics and trace read-outs (Section 7.2,
 * Figs. 6-7 machinery).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/metrics.h"

namespace treevqa {
namespace {

std::vector<VqaTask>
twoTasks()
{
    std::vector<VqaTask> tasks(2);
    tasks[0].name = "a";
    tasks[0].hamiltonian = PauliSum(1);
    tasks[0].groundEnergy = -10.0;
    tasks[1].name = "b";
    tasks[1].hamiltonian = PauliSum(1);
    tasks[1].groundEnergy = -5.0;
    return tasks;
}

TEST(Metrics, FidelityFormula)
{
    EXPECT_DOUBLE_EQ(energyFidelity(-10.0, -10.0), 1.0);
    EXPECT_DOUBLE_EQ(energyFidelity(-9.0, -10.0), 0.9);
    EXPECT_DOUBLE_EQ(energyFidelity(-11.0, -10.0), 0.9);
    EXPECT_DOUBLE_EQ(energyFidelity(0.0, -10.0), 0.0);
}

TEST(Metrics, SampleFidelitiesAndMin)
{
    const auto tasks = twoTasks();
    TraceSample s;
    s.bestEnergies = {-9.0, -5.0};
    const auto f = sampleFidelities(s, tasks);
    EXPECT_DOUBLE_EQ(f[0], 0.9);
    EXPECT_DOUBLE_EQ(f[1], 1.0);
    EXPECT_DOUBLE_EQ(minFidelity(s, tasks), 0.9);
}

Trace
syntheticTrace()
{
    // Fidelity of task 0 improves 0.5 -> 0.9 -> 0.99; task 1 is
    // perfect throughout.
    Trace trace;
    TraceSample s1;
    s1.shots = 100;
    s1.bestEnergies = {-5.0, -5.0};
    TraceSample s2;
    s2.shots = 300;
    s2.bestEnergies = {-9.0, -5.0};
    TraceSample s3;
    s3.shots = 700;
    s3.bestEnergies = {-9.9, -5.0};
    trace.push_back(s1);
    trace.push_back(s2);
    trace.push_back(s3);
    return trace;
}

TEST(Metrics, ShotsToReachFidelity)
{
    const auto tasks = twoTasks();
    const Trace trace = syntheticTrace();
    EXPECT_EQ(shotsToReachFidelity(trace, tasks, 0.4), 100u);
    EXPECT_EQ(shotsToReachFidelity(trace, tasks, 0.8), 300u);
    EXPECT_EQ(shotsToReachFidelity(trace, tasks, 0.95), 700u);
    EXPECT_EQ(shotsToReachFidelity(trace, tasks, 0.999),
              std::numeric_limits<std::uint64_t>::max());
    EXPECT_EQ(shotsToReachFidelity({}, tasks, 0.5), 0u);
}

TEST(Metrics, FidelityAtBudget)
{
    const auto tasks = twoTasks();
    const Trace trace = syntheticTrace();
    EXPECT_DOUBLE_EQ(fidelityAtBudget(trace, tasks, 50), 0.0);
    EXPECT_DOUBLE_EQ(fidelityAtBudget(trace, tasks, 100), 0.5);
    EXPECT_DOUBLE_EQ(fidelityAtBudget(trace, tasks, 500), 0.9);
    EXPECT_DOUBLE_EQ(fidelityAtBudget(trace, tasks, 10000), 0.99);
}

TEST(Metrics, MaxFidelity)
{
    const auto tasks = twoTasks();
    EXPECT_DOUBLE_EQ(maxFidelity(syntheticTrace(), tasks), 0.99);
}

TEST(Metrics, MeanErrorPercent)
{
    const auto tasks = twoTasks();
    TraceSample s;
    s.bestEnergies = {-9.0, -4.5}; // errors 10% and 10%
    EXPECT_NEAR(meanErrorPercent(s, tasks), 10.0, 1e-12);
}

TEST(Metrics, TaskGroundEnergyFlag)
{
    VqaTask t;
    EXPECT_FALSE(t.hasGroundEnergy());
    t.groundEnergy = -1.0;
    EXPECT_TRUE(t.hasGroundEnergy());
}

TEST(Metrics, MakeTasksNamesAndBits)
{
    PauliSum h(2);
    h.add(1.0, "ZZ");
    const auto tasks = makeTasks("fam", {h, h, h}, 0b01);
    ASSERT_EQ(tasks.size(), 3u);
    EXPECT_EQ(tasks[0].name, "fam[0]");
    EXPECT_EQ(tasks[2].name, "fam[2]");
    for (const auto &t : tasks) {
        EXPECT_EQ(t.initialBits, 0b01u);
        EXPECT_FALSE(t.hasGroundEnergy());
    }
}

} // namespace
} // namespace treevqa

/**
 * @file
 * Tests for the deterministic PRNG (common/rng.h), including the JSON
 * state round-trip the checkpoint/resume machinery depends on: a
 * saved-and-restored generator — scalar or any derived probe stream —
 * must continue with bit-identical draws.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/json.h"
#include "common/rng.h"
#include "core/engine_config.h"

namespace treevqa {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(1234), b(1234);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        equal += a.nextU64() == b.nextU64();
    EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(99);
    double s = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        s += rng.uniform();
    EXPECT_NEAR(s / n, 0.5, 0.01);
}

TEST(Rng, UniformIntInRange)
{
    Rng rng(3);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t v = rng.uniformInt(7);
        EXPECT_LT(v, 7u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u); // all values hit
}

TEST(Rng, NormalMomentsMatch)
{
    Rng rng(42);
    const int n = 200000;
    double s = 0.0, s2 = 0.0;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        s += x;
        s2 += x * x;
    }
    EXPECT_NEAR(s / n, 0.0, 0.02);
    EXPECT_NEAR(s2 / n, 1.0, 0.03);
}

TEST(Rng, NormalScaledMoments)
{
    Rng rng(42);
    const int n = 100000;
    double s = 0.0;
    for (int i = 0; i < n; ++i)
        s += rng.normal(3.0, 0.5);
    EXPECT_NEAR(s / n, 3.0, 0.02);
}

TEST(Rng, RademacherIsBalancedSigns)
{
    Rng rng(5);
    int pos = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double r = rng.rademacher();
        EXPECT_TRUE(r == 1.0 || r == -1.0);
        pos += r > 0;
    }
    EXPECT_NEAR(static_cast<double>(pos) / n, 0.5, 0.01);
}

TEST(Rng, RademacherVectorShape)
{
    Rng rng(5);
    const auto v = rng.rademacherVector(37);
    EXPECT_EQ(v.size(), 37u);
    for (double x : v)
        EXPECT_EQ(std::fabs(x), 1.0);
}

TEST(Rng, BinomialEdgeCases)
{
    Rng rng(8);
    EXPECT_EQ(rng.binomial(100, 0.0), 0u);
    EXPECT_EQ(rng.binomial(100, 1.0), 100u);
    EXPECT_LE(rng.binomial(50, 0.5), 50u);
}

TEST(Rng, BinomialMeanSmallN)
{
    Rng rng(8);
    double s = 0.0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i)
        s += static_cast<double>(rng.binomial(100, 0.3));
    EXPECT_NEAR(s / trials, 30.0, 0.5);
}

TEST(Rng, BinomialMeanLargeN)
{
    Rng rng(8);
    double s = 0.0;
    const int trials = 5000;
    for (int i = 0; i < trials; ++i)
        s += static_cast<double>(rng.binomial(4096, 0.25));
    EXPECT_NEAR(s / trials, 1024.0, 5.0);
}

TEST(Rng, PermutationIsPermutation)
{
    Rng rng(11);
    const auto p = rng.permutation(50);
    std::set<std::size_t> seen(p.begin(), p.end());
    EXPECT_EQ(seen.size(), 50u);
    EXPECT_EQ(*seen.begin(), 0u);
    EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(Rng, SplitStreamsAreIndependent)
{
    Rng parent(123);
    Rng child = parent.split();
    // The child stream must not reproduce the parent's stream.
    Rng parent_copy(123);
    parent_copy.nextU64(); // advance past the split draw
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        equal += child.nextU64() == parent_copy.nextU64();
    EXPECT_LT(equal, 2);
}

TEST(RngState, JsonRoundTripContinuesBitIdentically)
{
    Rng rng(20260728);
    for (int i = 0; i < 17; ++i)
        rng.nextU64();
    (void)rng.normal(); // odd normal count: Box-Muller cache is hot

    // state -> JSON -> text -> JSON -> state, restored into a
    // generator with a different seed (setState overrides all of it).
    const JsonValue snapshot = rngStateToJson(rng.state());
    Rng restored(1);
    restored.setState(
        rngStateFromJson(JsonValue::parse(snapshot.dump())));

    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(rng.nextU64(), restored.nextU64()) << "draw " << i;
    for (int i = 0; i < 33; ++i)
        EXPECT_EQ(rng.normal(), restored.normal()) << "normal " << i;
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(rng.uniform(), restored.uniform()) << "uniform " << i;
}

TEST(RngState, CachedNormalSurvivesTheRoundTrip)
{
    Rng rng(7);
    (void)rng.normal(); // consumes one of the pair, caches the other
    const RngState state = rng.state();
    EXPECT_TRUE(state.hasCachedNormal);

    Rng restored(99);
    restored.setState(rngStateFromJson(
        JsonValue::parse(rngStateToJson(state).dump())));
    // First draw is the cached second Box-Muller value, then a fresh
    // pair — all bit-identical.
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(rng.normal(), restored.normal()) << "normal " << i;
}

TEST(RngState, RoundTripAcrossDerivedProbeStreams)
{
    // The evaluation engine hands probe i the derived stream
    // probeRng(base, i); a checkpoint snapshots such streams mid-use.
    // Save all eight at staggered positions (odd ones with a hot
    // normal cache), restore from re-parsed JSON, and require every
    // stream to continue bit-identically.
    const std::uint64_t base = 0xfeedfacecafef00dull;
    std::vector<Rng> streams;
    JsonValue states = JsonValue::array();
    for (std::size_t i = 0; i < 8; ++i) {
        Rng probe = probeRng(base, i);
        for (std::size_t k = 0; k < i; ++k)
            probe.nextU64();
        if (i % 2 == 1)
            (void)probe.normal();
        states.push_back(rngStateToJson(probe.state()));
        streams.push_back(probe);
    }

    const JsonValue reparsed = JsonValue::parse(states.dump());
    ASSERT_EQ(reparsed.asArray().size(), 8u);
    for (std::size_t i = 0; i < 8; ++i) {
        Rng restored(0);
        restored.setState(
            rngStateFromJson(reparsed.asArray()[i]));
        for (int k = 0; k < 32; ++k)
            EXPECT_EQ(streams[i].nextU64(), restored.nextU64())
                << "stream " << i << " draw " << k;
        for (int k = 0; k < 9; ++k)
            EXPECT_EQ(streams[i].normal(), restored.normal())
                << "stream " << i << " normal " << k;
    }

    // Derived streams are decorrelated: distinct first draws.
    std::set<std::uint64_t> first;
    for (std::size_t i = 0; i < 8; ++i)
        first.insert(probeRng(base, i).nextU64());
    EXPECT_EQ(first.size(), 8u);
}

/** Seed sweep: uniform() stays in bounds and is deterministic. */
class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RngSeedSweep, ReproducibleAndBounded)
{
    Rng a(GetParam()), b(GetParam());
    for (int i = 0; i < 256; ++i) {
        const double ua = a.uniform();
        EXPECT_EQ(ua, b.uniform());
        EXPECT_GE(ua, 0.0);
        EXPECT_LT(ua, 1.0);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ull, 1ull, 42ull, 1337ull,
                                           0xffffffffffffffffull,
                                           0x8000000000000000ull));

} // namespace
} // namespace treevqa

/**
 * @file
 * Tests for the deterministic PRNG (common/rng.h).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"

namespace treevqa {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(1234), b(1234);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        equal += a.nextU64() == b.nextU64();
    EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(99);
    double s = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        s += rng.uniform();
    EXPECT_NEAR(s / n, 0.5, 0.01);
}

TEST(Rng, UniformIntInRange)
{
    Rng rng(3);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t v = rng.uniformInt(7);
        EXPECT_LT(v, 7u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u); // all values hit
}

TEST(Rng, NormalMomentsMatch)
{
    Rng rng(42);
    const int n = 200000;
    double s = 0.0, s2 = 0.0;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        s += x;
        s2 += x * x;
    }
    EXPECT_NEAR(s / n, 0.0, 0.02);
    EXPECT_NEAR(s2 / n, 1.0, 0.03);
}

TEST(Rng, NormalScaledMoments)
{
    Rng rng(42);
    const int n = 100000;
    double s = 0.0;
    for (int i = 0; i < n; ++i)
        s += rng.normal(3.0, 0.5);
    EXPECT_NEAR(s / n, 3.0, 0.02);
}

TEST(Rng, RademacherIsBalancedSigns)
{
    Rng rng(5);
    int pos = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double r = rng.rademacher();
        EXPECT_TRUE(r == 1.0 || r == -1.0);
        pos += r > 0;
    }
    EXPECT_NEAR(static_cast<double>(pos) / n, 0.5, 0.01);
}

TEST(Rng, RademacherVectorShape)
{
    Rng rng(5);
    const auto v = rng.rademacherVector(37);
    EXPECT_EQ(v.size(), 37u);
    for (double x : v)
        EXPECT_EQ(std::fabs(x), 1.0);
}

TEST(Rng, BinomialEdgeCases)
{
    Rng rng(8);
    EXPECT_EQ(rng.binomial(100, 0.0), 0u);
    EXPECT_EQ(rng.binomial(100, 1.0), 100u);
    EXPECT_LE(rng.binomial(50, 0.5), 50u);
}

TEST(Rng, BinomialMeanSmallN)
{
    Rng rng(8);
    double s = 0.0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i)
        s += static_cast<double>(rng.binomial(100, 0.3));
    EXPECT_NEAR(s / trials, 30.0, 0.5);
}

TEST(Rng, BinomialMeanLargeN)
{
    Rng rng(8);
    double s = 0.0;
    const int trials = 5000;
    for (int i = 0; i < trials; ++i)
        s += static_cast<double>(rng.binomial(4096, 0.25));
    EXPECT_NEAR(s / trials, 1024.0, 5.0);
}

TEST(Rng, PermutationIsPermutation)
{
    Rng rng(11);
    const auto p = rng.permutation(50);
    std::set<std::size_t> seen(p.begin(), p.end());
    EXPECT_EQ(seen.size(), 50u);
    EXPECT_EQ(*seen.begin(), 0u);
    EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(Rng, SplitStreamsAreIndependent)
{
    Rng parent(123);
    Rng child = parent.split();
    // The child stream must not reproduce the parent's stream.
    Rng parent_copy(123);
    parent_copy.nextU64(); // advance past the split draw
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        equal += child.nextU64() == parent_copy.nextU64();
    EXPECT_LT(equal, 2);
}

/** Seed sweep: uniform() stays in bounds and is deterministic. */
class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RngSeedSweep, ReproducibleAndBounded)
{
    Rng a(GetParam()), b(GetParam());
    for (int i = 0; i < 256; ++i) {
        const double ua = a.uniform();
        EXPECT_EQ(ua, b.uniform());
        EXPECT_GE(ua, 0.0);
        EXPECT_LT(ua, 1.0);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ull, 1ull, 42ull, 1337ull,
                                           0xffffffffffffffffull,
                                           0x8000000000000000ull));

} // namespace
} // namespace treevqa

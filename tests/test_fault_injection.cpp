/**
 * @file
 * Tests for the deterministic fault-injection registry
 * (common/fault_injection.h) and the hardened I/O it exercises: plan
 * parsing and trigger determinism, retry/backoff in file_util, CRC
 * quarantine in the result store, the checkpoint last-good fallback,
 * and the worker daemon's poison-job quarantine.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/file_util.h"
#include "dist/store_merge.h"
#include "dist/worker_daemon.h"
#include "svc/result_store.h"
#include "svc/scenario_runner.h"
#include "svc/sweep_dir.h"

namespace treevqa {
namespace {

std::filesystem::path
scratchDir(const std::string &name)
{
    const std::filesystem::path dir =
        std::filesystem::path(::testing::TempDir()) / ("fault_" + name);
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

/** The registry is process-wide state: every test that arms it must
 * disarm on the way out, pass or fail. */
class FaultInjectionTest : public ::testing::Test
{
  protected:
    void TearDown() override { FaultInjection::instance().disarm(); }
};

ScenarioSpec
tinySpec(const std::string &name, int iterations = 12)
{
    ScenarioSpec spec;
    spec.name = name;
    spec.problem = "tfim";
    spec.size = 4;
    spec.field = 0.7;
    spec.ansatz = "hea";
    spec.layers = 1;
    spec.engine.shotsPerTerm = 256;
    spec.maxIterations = iterations;
    spec.seed = 99;
    spec.checkpointInterval = 4;
    return spec;
}

// ------------------------------------------------------ plan validation

TEST_F(FaultInjectionTest, MalformedPlansAreRejected)
{
    auto &fi = FaultInjection::instance();
    EXPECT_THROW(fi.arm("not json"), std::exception);
    EXPECT_THROW(fi.arm("[]"), std::exception); // must be an object
    // Unknown keys are typos, not extensions.
    EXPECT_THROW(
        fi.arm(R"({"seed": 1, "faults": [{"site": "x",
                "action": "crash", "hit": 1, "bogus": 2}]})"),
        std::exception);
    // A trigger is required, and only one of hit/probability.
    EXPECT_THROW(
        fi.arm(R"({"faults": [{"site": "x", "action": "crash"}]})"),
        std::exception);
    EXPECT_THROW(fi.arm(R"({"faults": [{"site": "x", "action":
                "crash", "hit": 1, "probability": 0.5}]})"),
                 std::exception);
    // Unknown action / unknown errno name.
    EXPECT_THROW(fi.arm(R"({"faults": [{"site": "x",
                "action": "explode", "hit": 1}]})"),
                 std::exception);
    EXPECT_THROW(fi.arm(R"({"faults": [{"site": "x",
                "action": "fail-errno", "errno": "EWHAT",
                "hit": 1}]})"),
                 std::exception);
    EXPECT_FALSE(FaultInjection::armed());
}

TEST_F(FaultInjectionTest, DisarmedSitesAreNoOps)
{
    EXPECT_FALSE(FaultInjection::armed());
    const FaultHit hit = FAULT_POINT("nothing.armed");
    EXPECT_FALSE(static_cast<bool>(hit));
    EXPECT_EQ(hit.action, FaultAction::None);
}

// ------------------------------------------------------------- triggers

TEST_F(FaultInjectionTest, HitTriggerFiresOnNthEvaluationOnly)
{
    auto &fi = FaultInjection::instance();
    fi.arm(R"({"seed": 1, "faults": [{"site": "t.hit",
           "action": "fail-errno", "errno": "EIO", "hit": 3}]})");
    EXPECT_FALSE(static_cast<bool>(FAULT_POINT("t.hit")));
    EXPECT_FALSE(static_cast<bool>(FAULT_POINT("t.hit")));
    const FaultHit third = FAULT_POINT("t.hit");
    EXPECT_EQ(third.action, FaultAction::FailErrno);
    EXPECT_EQ(third.err, EIO);
    // times defaults to 1: never again.
    for (int i = 0; i < 5; ++i)
        EXPECT_FALSE(static_cast<bool>(FAULT_POINT("t.hit")));
    // Other sites are untouched.
    EXPECT_FALSE(static_cast<bool>(FAULT_POINT("t.other")));
    const auto counters = fi.counters();
    EXPECT_EQ(counters.at("t.hit").evaluations, 8u);
    EXPECT_EQ(counters.at("t.hit").fires, 1u);
    EXPECT_EQ(fi.totalFires(), 1u);
}

TEST_F(FaultInjectionTest, TimesCapsAndZeroMeansUnlimited)
{
    auto &fi = FaultInjection::instance();
    fi.arm(R"({"faults": [{"site": "t.cap", "action": "fail-errno",
           "errno": "EIO", "hit": 1, "times": 2}]})");
    EXPECT_TRUE(static_cast<bool>(FAULT_POINT("t.cap")));
    EXPECT_TRUE(static_cast<bool>(FAULT_POINT("t.cap")));
    EXPECT_FALSE(static_cast<bool>(FAULT_POINT("t.cap")));

    fi.arm(R"({"faults": [{"site": "t.all", "action": "fail-errno",
           "errno": "EIO", "hit": 1, "times": 0}]})");
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(static_cast<bool>(FAULT_POINT("t.all")));
}

TEST_F(FaultInjectionTest, ProbabilityScheduleIsSeedDeterministic)
{
    auto &fi = FaultInjection::instance();
    const std::string plan =
        R"({"seed": 1234, "faults": [{"site": "t.p", "action":
        "fail-errno", "errno": "EIO", "probability": 0.3,
        "times": 0}]})";
    const auto schedule = [&] {
        std::vector<bool> fires;
        for (int i = 0; i < 200; ++i)
            fires.push_back(static_cast<bool>(FAULT_POINT("t.p")));
        return fires;
    };
    fi.arm(plan);
    const std::vector<bool> first = schedule();
    fi.arm(plan); // re-arm resets the stream
    EXPECT_EQ(first, schedule());

    std::size_t fired = 0;
    for (const bool f : first)
        fired += f ? 1 : 0;
    EXPECT_GT(fired, 30u); // ~60 expected at p=0.3
    EXPECT_LT(fired, 100u);

    // A different seed gives a different (but equally deterministic)
    // schedule.
    fi.arm(R"({"seed": 99, "faults": [{"site": "t.p", "action":
           "fail-errno", "errno": "EIO", "probability": 0.3,
           "times": 0}]})");
    EXPECT_NE(first, schedule());
}

TEST_F(FaultInjectionTest, TornPrefixMath)
{
    FaultHit hit;
    hit.action = FaultAction::TornWrite;
    hit.keepFraction = 0.5;
    EXPECT_EQ(hit.tornPrefix(100), 50u);
    hit.keepFraction = 0.0;
    EXPECT_EQ(hit.tornPrefix(100), 0u);
    hit.keepFraction = 0.001; // torn but distinguishable from absent
    EXPECT_EQ(hit.tornPrefix(100), 1u);
    hit.keepFraction = 1.5; // clamped
    EXPECT_EQ(hit.tornPrefix(100), 100u);
    EXPECT_EQ(hit.tornPrefix(0), 0u);
}

// ------------------------------------------------- hardened file_util

TEST_F(FaultInjectionTest, AtomicWriteRidesOutTransientRenameFailures)
{
    const auto dir = scratchDir("transient");
    const std::string path = (dir / "f").string();
    FaultInjection::instance().arm(
        R"({"faults": [{"site": "file.write_atomic.rename",
        "action": "fail-errno", "errno": "EAGAIN", "hit": 1,
        "times": 3}]})");
    writeTextFileAtomic(path, "payload"); // 3 EAGAINs, then succeeds
    std::string content;
    ASSERT_TRUE(readTextFile(path, content));
    EXPECT_EQ(content, "payload");
    EXPECT_EQ(FaultInjection::instance().totalFires(), 3u);
}

TEST_F(FaultInjectionTest, AtomicWriteThrowsOnPersistentFailure)
{
    const auto dir = scratchDir("persistent");
    const std::string path = (dir / "f").string();
    writeTextFileAtomic(path, "old");
    FaultInjection::instance().arm(
        R"({"faults": [{"site": "file.write_atomic.rename",
        "action": "fail-errno", "errno": "EIO", "hit": 1}]})");
    EXPECT_THROW(writeTextFileAtomic(path, "new"),
                 std::runtime_error);
    FaultInjection::instance().disarm();
    // The old content is untouched and no staging temp leaks.
    std::string content;
    ASSERT_TRUE(readTextFile(path, content));
    EXPECT_EQ(content, "old");
    std::size_t entries = 0;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir)) {
        (void)entry;
        ++entries;
    }
    EXPECT_EQ(entries, 1u);
}

TEST_F(FaultInjectionTest, DurableAppendSealsTornLines)
{
    const auto dir = scratchDir("seal");
    const std::string path = (dir / "log.jsonl").string();
    appendTextDurable(path, "{\"a\": 1}\n");
    {
        std::ofstream torn(path, std::ios::app);
        torn << "{\"half"; // no newline: a killed writer's fragment
    }
    appendTextDurable(path, "{\"b\": 2}\n");
    std::string content;
    ASSERT_TRUE(readTextFile(path, content));
    EXPECT_EQ(content, "{\"a\": 1}\n{\"half\n{\"b\": 2}\n");
}

// --------------------------------------------- store CRC + quarantine

TEST_F(FaultInjectionTest, StoreQuarantinesCorruptLinesAndRecovers)
{
    const auto dir = scratchDir("store_crc");
    const std::string path = (dir / "results.jsonl").string();

    const JobResult good = runScenario(tinySpec("crcjob"));
    ASSERT_TRUE(good.completed);
    ResultStore store(path);
    store.append(good);

    // Tamper: flip a digit inside the stored record so it still
    // parses but fails its CRC, and add a torn fragment plus a
    // consistent-looking record whose fingerprint lies about its spec.
    std::string text;
    ASSERT_TRUE(readTextFile(path, text));
    const std::string key = "\"iterations\":";
    const std::size_t digit = text.find(key);
    ASSERT_NE(digit, std::string::npos);
    std::string tampered = text;
    char &first = tampered[digit + key.size()];
    first = first == '9' ? '8' : '9';
    JsonValue forged = jobResultToJson(good);
    forged.set("fingerprint", JsonValue("00000000deadbeef"));
    forged.set("crc", JsonValue(crc32Hex(forged.dump())));
    std::ofstream out(path, std::ios::trunc);
    out << tampered;           // crc mismatch
    out << "{\"torn\": tru";   // unparseable fragment
    out << "\n" << forged.dump() << "\n"; // fingerprint mismatch
    out.close();

    StoreLoadStats stats;
    const std::vector<JobResult> records = store.load(&stats);
    EXPECT_EQ(records.size(), 0u);
    EXPECT_EQ(stats.crcMismatches, 1u);
    EXPECT_EQ(stats.parseFailures, 1u);
    EXPECT_EQ(stats.fingerprintMismatches, 1u);
    EXPECT_EQ(stats.corrupt(), 3u);

    // The corrupt lines were copied to the quarantine directory.
    const std::string qdir = quarantineDirFor(path);
    ASSERT_TRUE(std::filesystem::exists(qdir));
    std::string quarantined;
    ASSERT_TRUE(readTextFile(
        (std::filesystem::path(qdir) / "results.jsonl").string(),
        quarantined));
    EXPECT_NE(quarantined.find("crc mismatch"), std::string::npos);
    EXPECT_NE(quarantined.find("unparseable"), std::string::npos);
    EXPECT_NE(quarantined.find("fingerprint"), std::string::npos);

    // Re-appending the good record makes the store whole again.
    store.append(good);
    StoreLoadStats after;
    const std::vector<JobResult> recovered = store.load(&after);
    ASSERT_EQ(recovered.size(), 1u);
    EXPECT_EQ(recovered[0].fingerprint, good.fingerprint);
    EXPECT_EQ(after.records, 1u);
}

TEST_F(FaultInjectionTest, StoredLinesRoundTripThroughCrc)
{
    const JobResult good = runScenario(tinySpec("roundtrip", 6));
    const std::string line = jobResultToStoredLine(good);
    JsonValue parsed = JsonValue::parse(line);
    const std::string crc = parsed.at("crc").asString();
    ASSERT_TRUE(parsed.erase("crc"));
    EXPECT_EQ(crc32Hex(parsed.dump()), crc);
    const JobResult back = jobResultFromJson(parsed);
    EXPECT_EQ(back.fingerprint, good.fingerprint);
    EXPECT_EQ(back.finalEnergy, good.finalEnergy);
}

TEST_F(FaultInjectionTest, MergeQuarantinesCorruptShardInsteadOfDeleting)
{
    const auto dir = scratchDir("merge_q");
    std::filesystem::create_directories(sweepShardDir(dir.string()));

    const JobResult good = runScenario(tinySpec("mergejob", 6));
    const std::string shard =
        sweepShardPath(dir.string(), "workerA");
    ResultStore(shard).append(good);
    // Corrupt the shard with a torn trailing fragment.
    {
        std::ofstream out(shard, std::ios::app);
        out << "{\"torn";
    }

    const SweepMergeStats stats =
        compactSweepStore(dir.string(), /*removeMergedShards=*/true);
    EXPECT_EQ(stats.inputRecords, 1u);
    EXPECT_EQ(stats.uniqueRecords, 1u);
    EXPECT_EQ(stats.corruptLines, 1u);
    EXPECT_EQ(stats.quarantinedShards, 1u);
    // The shard was moved, not deleted: its bytes survive under
    // quarantine/ and the healthy record still reached the store.
    EXPECT_FALSE(std::filesystem::exists(shard));
    EXPECT_TRUE(std::filesystem::exists(
        std::filesystem::path(quarantineDirFor(shard))
        / "workerA.jsonl.shard"));
    StoreLoadStats loaded;
    const auto records =
        ResultStore(sweepStorePath(dir.string())).load(&loaded);
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].fingerprint, good.fingerprint);
    EXPECT_EQ(loaded.corrupt(), 0u);
}

// ------------------------------------------- checkpoint CRC + fallback

TEST_F(FaultInjectionTest, CorruptCheckpointFallsBackToLastGood)
{
    const auto dir = scratchDir("ckpt");
    const std::string ckpt = (dir / "job.json").string();
    const ScenarioSpec spec = tinySpec("ckptjob");

    const JobResult reference = runScenario(spec);

    // Interrupt after the second checkpoint (iteration 8), then
    // corrupt the current checkpoint file: resume must fall back to
    // the rotated .prev generation and still converge bit-identically.
    ScenarioRunOptions options;
    options.checkpointPath = ckpt;
    options.haltAfterIterations = 9;
    const JobResult halted = runScenario(spec, options);
    ASSERT_FALSE(halted.completed);
    ASSERT_TRUE(std::filesystem::exists(ckpt));
    ASSERT_TRUE(std::filesystem::exists(ckpt + ".prev"));

    std::string current;
    ASSERT_TRUE(readTextFile(ckpt, current));
    writeTextFileAtomic(ckpt,
                        current.substr(0, current.size() / 2));

    ScenarioRunOptions resume;
    resume.checkpointPath = ckpt;
    const JobResult finished = runScenario(spec, resume);
    ASSERT_TRUE(finished.completed);
    EXPECT_TRUE(finished.resumed);
    EXPECT_EQ(finished.finalEnergy, reference.finalEnergy);
    EXPECT_EQ(finished.bestLoss, reference.bestLoss);
    ASSERT_EQ(finished.trajectory.size(), reference.trajectory.size());
    for (std::size_t i = 0; i < finished.trajectory.size(); ++i)
        EXPECT_EQ(finished.trajectory[i], reference.trajectory[i]);
    // Completion retires both generations.
    EXPECT_FALSE(std::filesystem::exists(ckpt));
    EXPECT_FALSE(std::filesystem::exists(ckpt + ".prev"));
}

TEST_F(FaultInjectionTest, BothCheckpointsCorruptMeansFreshStart)
{
    const auto dir = scratchDir("ckpt_both");
    const std::string ckpt = (dir / "job.json").string();
    const ScenarioSpec spec = tinySpec("ckptjob2");
    const JobResult reference = runScenario(spec);

    ScenarioRunOptions options;
    options.checkpointPath = ckpt;
    options.haltAfterIterations = 9;
    ASSERT_FALSE(runScenario(spec, options).completed);
    writeTextFileAtomic(ckpt, "{\"garbage\": true}");
    writeTextFileAtomic(ckpt + ".prev", "not even json");

    ScenarioRunOptions resume;
    resume.checkpointPath = ckpt;
    const JobResult finished = runScenario(spec, resume);
    ASSERT_TRUE(finished.completed);
    EXPECT_FALSE(finished.resumed);
    EXPECT_EQ(finished.finalEnergy, reference.finalEnergy);
}

TEST_F(FaultInjectionTest, TornCheckpointWriteIsDetectedOnResume)
{
    const auto dir = scratchDir("ckpt_torn");
    const std::string ckpt = (dir / "job.json").string();
    const ScenarioSpec spec = tinySpec("ckptjob3");
    const JobResult reference = runScenario(spec);

    // Tear the *second* checkpoint write through the fault layer, and
    // halt right after it: on disk sits a renamed-whole but corrupt
    // current file plus the good first generation.
    FaultInjection::instance().arm(
        R"({"faults": [{"site": "checkpoint.write",
        "action": "torn-write", "keepFraction": 0.6, "hit": 2}]})");
    ScenarioRunOptions options;
    options.checkpointPath = ckpt;
    options.haltAfterIterations = 9;
    ASSERT_FALSE(runScenario(spec, options).completed);
    FaultInjection::instance().disarm();

    ScenarioRunOptions resume;
    resume.checkpointPath = ckpt;
    const JobResult finished = runScenario(spec, resume);
    ASSERT_TRUE(finished.completed);
    EXPECT_TRUE(finished.resumed); // .prev carried it
    EXPECT_EQ(finished.finalEnergy, reference.finalEnergy);
}

// ------------------------------------------------ poison-job quarantine

TEST_F(FaultInjectionTest, WorkerQuarantinesPoisonJobAndDrains)
{
    const auto dir = scratchDir("poison");

    std::vector<ScenarioSpec> specs;
    specs.push_back(tinySpec("healthy", 6));
    // The realistic poison shape: a spec that parses and fingerprints
    // fine but throws on every run attempt (the 4-qubit-only minimal
    // UCCSD ansatz against a 6-qubit problem).
    ScenarioSpec poison = tinySpec("poison", 6);
    poison.size = 6;
    poison.ansatz = "uccsd_min";
    specs.push_back(poison);

    WorkerOptions options;
    options.sweepDir = dir.string();
    options.workerId = "w0";
    options.leaseMs = 2000;
    options.maxJobAttempts = 2;
    options.retryBackoffMs = 1;
    WorkerDaemon daemon(options);
    const WorkerReport report = daemon.run(specs);

    EXPECT_EQ(report.completed, 1u);
    EXPECT_EQ(report.poisoned, 1u);
    EXPECT_EQ(report.failedAttempts, 2u);
    EXPECT_TRUE(report.drained);
    EXPECT_TRUE(report.merged);

    // The poison record is on file, CRC-stamped like any other, and
    // marks the job failed (not completed).
    bool sawPoison = false;
    StoreLoadStats stats;
    for (const JobResult &record :
         ResultStore(sweepStorePath(dir.string())).load(&stats)) {
        if (record.spec.name != "poison")
            continue;
        sawPoison = true;
        EXPECT_TRUE(record.failed);
        EXPECT_FALSE(record.completed);
        EXPECT_FALSE(record.errorMessage.empty());
    }
    EXPECT_TRUE(sawPoison);
    EXPECT_EQ(stats.corrupt(), 0u);
}

} // namespace
} // namespace treevqa

/**
 * @file
 * Tests for exact Pauli expectations on statevectors, including the
 * grouped batch evaluator against the single-string reference.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "ham/spin_chains.h"
#include "sim/expectation.h"

namespace treevqa {
namespace {

/** A pseudo-random but normalized 4-qubit state. */
Statevector
randomState(std::uint64_t seed)
{
    Rng rng(seed);
    Statevector s(4);
    for (int g = 0; g < 40; ++g) {
        const int q = static_cast<int>(rng.uniformInt(4));
        const int p = static_cast<int>((q + 1) % 4);
        switch (rng.uniformInt(5)) {
          case 0: s.applyRx(q, rng.uniform(-3, 3)); break;
          case 1: s.applyRy(q, rng.uniform(-3, 3)); break;
          case 2: s.applyRz(q, rng.uniform(-3, 3)); break;
          case 3: s.applyCx(q, p); break;
          default: s.applyH(q); break;
        }
    }
    return s;
}

TEST(Expectation, DiagonalOnBasisState)
{
    Statevector s(3);
    s.setBasisState(0b110);
    EXPECT_NEAR(expectation(s, PauliString::fromLabel("ZII")), 1.0,
                1e-14);
    EXPECT_NEAR(expectation(s, PauliString::fromLabel("IZI")), -1.0,
                1e-14);
    EXPECT_NEAR(expectation(s, PauliString::fromLabel("IZZ")), 1.0,
                1e-14);
}

TEST(Expectation, XOnPlusState)
{
    Statevector s(1);
    s.applyH(0);
    EXPECT_NEAR(expectation(s, PauliString::fromLabel("X")), 1.0, 1e-14);
    EXPECT_NEAR(expectation(s, PauliString::fromLabel("Z")), 0.0, 1e-14);
}

TEST(Expectation, YOnCircularState)
{
    // |psi> = (|0> + i|1>)/sqrt(2) has <Y> = 1.
    Statevector s(1);
    s.applyH(0);
    s.applyS(0);
    EXPECT_NEAR(expectation(s, PauliString::fromLabel("Y")), 1.0, 1e-14);
}

TEST(Expectation, MatchesPauliSumExpectation)
{
    const PauliSum h = xxzChain(4, 1.0, 0.8);
    const Statevector s = randomState(5);
    EXPECT_NEAR(expectation(s, h), h.expectation(s.amplitudes()), 1e-10);
}

TEST(Expectation, PerTermMatchesSingleString)
{
    const PauliSum h = xxzChain(4, 1.0, 0.8);
    const Statevector s = randomState(6);
    const auto terms = perTermExpectations(s, h);
    ASSERT_EQ(terms.size(), h.numTerms());
    for (std::size_t k = 0; k < h.numTerms(); ++k)
        EXPECT_NEAR(terms[k], expectation(s, h.terms()[k].string),
                    1e-12);
}

TEST(Expectation, RecombineIsDotProduct)
{
    EXPECT_DOUBLE_EQ(recombine({1.0, 2.0}, {0.5, -0.25}), 0.0);
    EXPECT_DOUBLE_EQ(recombine({}, {}), 0.0);
}

/** Property: the grouped batch evaluator agrees with the per-string
 * reference on random states and mixed string sets. */
class BatchExpectationSweep
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(BatchExpectationSweep, GroupedMatchesReference)
{
    Rng rng(GetParam());
    const Statevector s = randomState(GetParam() * 31 + 7);

    // A string set with deliberate x-mask collisions (hopping pairs
    // share X support, like the chemistry Hamiltonians).
    std::vector<PauliString> strings;
    strings.push_back(PauliString(4)); // identity
    for (int trial = 0; trial < 30; ++trial) {
        PauliString p(4);
        for (int q = 0; q < 4; ++q) {
            const char ops[4] = {'I', 'X', 'Y', 'Z'};
            p.setOp(q, ops[rng.uniformInt(4)]);
        }
        strings.push_back(p);
    }

    const auto batch = perStringExpectations(s, strings);
    ASSERT_EQ(batch.size(), strings.size());
    for (std::size_t k = 0; k < strings.size(); ++k) {
        const double reference = strings[k].isIdentity()
            ? 1.0
            : expectation(s, strings[k]);
        EXPECT_NEAR(batch[k], reference, 1e-11)
            << strings[k].toLabel();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchExpectationSweep,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull,
                                           6ull, 7ull, 8ull));

TEST(Expectation, ExpectationBoundsRespected)
{
    // |<P>| <= 1 for any state and non-identity string.
    const Statevector s = randomState(77);
    const char ops[3] = {'X', 'Y', 'Z'};
    for (char a : ops)
        for (char b : ops) {
            PauliString p(4);
            p.setOp(0, a);
            p.setOp(2, b);
            const double e = expectation(s, p);
            EXPECT_LE(std::fabs(e), 1.0 + 1e-12);
        }
}

} // namespace
} // namespace treevqa

/**
 * @file
 * Tests for exact Pauli expectations on statevectors, including the
 * grouped batch evaluator against the single-string reference.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "ham/spin_chains.h"
#include "sim/expectation.h"
#include "sim/reference_kernels.h"

namespace treevqa {
namespace {

/** A pseudo-random but normalized 4-qubit state. */
Statevector
randomState(std::uint64_t seed)
{
    Rng rng(seed);
    Statevector s(4);
    for (int g = 0; g < 40; ++g) {
        const int q = static_cast<int>(rng.uniformInt(4));
        const int p = static_cast<int>((q + 1) % 4);
        switch (rng.uniformInt(5)) {
          case 0: s.applyRx(q, rng.uniform(-3, 3)); break;
          case 1: s.applyRy(q, rng.uniform(-3, 3)); break;
          case 2: s.applyRz(q, rng.uniform(-3, 3)); break;
          case 3: s.applyCx(q, p); break;
          default: s.applyH(q); break;
        }
    }
    return s;
}

TEST(Expectation, DiagonalOnBasisState)
{
    Statevector s(3);
    s.setBasisState(0b110);
    EXPECT_NEAR(expectation(s, PauliString::fromLabel("ZII")), 1.0,
                1e-14);
    EXPECT_NEAR(expectation(s, PauliString::fromLabel("IZI")), -1.0,
                1e-14);
    EXPECT_NEAR(expectation(s, PauliString::fromLabel("IZZ")), 1.0,
                1e-14);
}

TEST(Expectation, XOnPlusState)
{
    Statevector s(1);
    s.applyH(0);
    EXPECT_NEAR(expectation(s, PauliString::fromLabel("X")), 1.0, 1e-14);
    EXPECT_NEAR(expectation(s, PauliString::fromLabel("Z")), 0.0, 1e-14);
}

TEST(Expectation, YOnCircularState)
{
    // |psi> = (|0> + i|1>)/sqrt(2) has <Y> = 1.
    Statevector s(1);
    s.applyH(0);
    s.applyS(0);
    EXPECT_NEAR(expectation(s, PauliString::fromLabel("Y")), 1.0, 1e-14);
}

TEST(Expectation, MatchesPauliSumExpectation)
{
    const PauliSum h = xxzChain(4, 1.0, 0.8);
    const Statevector s = randomState(5);
    EXPECT_NEAR(expectation(s, h), h.expectation(s.amplitudes()), 1e-10);
}

TEST(Expectation, PerTermMatchesSingleString)
{
    const PauliSum h = xxzChain(4, 1.0, 0.8);
    const Statevector s = randomState(6);
    const auto terms = perTermExpectations(s, h);
    ASSERT_EQ(terms.size(), h.numTerms());
    for (std::size_t k = 0; k < h.numTerms(); ++k)
        EXPECT_NEAR(terms[k], expectation(s, h.terms()[k].string),
                    1e-12);
}

TEST(Expectation, RecombineIsDotProduct)
{
    EXPECT_DOUBLE_EQ(recombine({1.0, 2.0}, {0.5, -0.25}), 0.0);
    EXPECT_DOUBLE_EQ(recombine({}, {}), 0.0);
}

/** Property: the grouped batch evaluator agrees with the per-string
 * reference on random states and mixed string sets. */
class BatchExpectationSweep
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(BatchExpectationSweep, GroupedMatchesReference)
{
    Rng rng(GetParam());
    const Statevector s = randomState(GetParam() * 31 + 7);

    // A string set with deliberate x-mask collisions (hopping pairs
    // share X support, like the chemistry Hamiltonians).
    std::vector<PauliString> strings;
    strings.push_back(PauliString(4)); // identity
    for (int trial = 0; trial < 30; ++trial) {
        PauliString p(4);
        for (int q = 0; q < 4; ++q) {
            const char ops[4] = {'I', 'X', 'Y', 'Z'};
            p.setOp(q, ops[rng.uniformInt(4)]);
        }
        strings.push_back(p);
    }

    const auto batch = perStringExpectations(s, strings);
    ASSERT_EQ(batch.size(), strings.size());
    for (std::size_t k = 0; k < strings.size(); ++k) {
        const double reference = strings[k].isIdentity()
            ? 1.0
            : expectation(s, strings[k]);
        EXPECT_NEAR(batch[k], reference, 1e-11)
            << strings[k].toLabel();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchExpectationSweep,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull,
                                           6ull, 7ull, 8ull));

/** A pseudo-random normalized n-qubit state. */
Statevector
randomStateN(int n, std::uint64_t seed)
{
    Rng rng(seed);
    Statevector s(n);
    for (int g = 0; g < 12 * n; ++g) {
        const int q = static_cast<int>(rng.uniformInt(n));
        const int p = static_cast<int>((q + 1) % n);
        switch (rng.uniformInt(5)) {
          case 0: s.applyRx(q, rng.uniform(-3, 3)); break;
          case 1: s.applyRy(q, rng.uniform(-3, 3)); break;
          case 2: s.applyRz(q, rng.uniform(-3, 3)); break;
          case 3: s.applyCx(q, p); break;
          default: s.applyH(q); break;
        }
    }
    return s;
}

/**
 * Property: the pairing-optimized single-string expectation and the
 * blocked batch evaluator both agree with the naive full-scan
 * reference on random 6-qubit states and random Pauli sets, to 1e-12.
 */
class KernelEquivalenceSweep
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(KernelEquivalenceSweep, OptimizedMatchesFullScanReference)
{
    Rng rng(GetParam() * 557 + 11);
    const int n = 6;
    const Statevector s = randomStateN(n, GetParam() * 8191 + 5);

    // Random strings with forced x-mask collisions so multi-member
    // groups exercise the blocked member loop.
    std::vector<PauliString> strings;
    strings.push_back(PauliString(n)); // identity
    const char ops[4] = {'I', 'X', 'Y', 'Z'};
    for (int trial = 0; trial < 40; ++trial) {
        PauliString p(n);
        for (int q = 0; q < n; ++q)
            p.setOp(q, ops[rng.uniformInt(4)]);
        strings.push_back(p);
        // A sibling with the same X mask but different Z mask.
        PauliString sib = p;
        for (int q = 0; q < n; ++q) {
            if (rng.uniformInt(2) == 0)
                continue;
            const char c = sib.opAt(q);
            if (c == 'I')
                sib.setOp(q, 'Z');
            else if (c == 'Z')
                sib.setOp(q, 'I');
            else if (c == 'X')
                sib.setOp(q, 'Y');
            else
                sib.setOp(q, 'X');
        }
        strings.push_back(sib);
    }

    const auto batch = perStringExpectations(s, strings);
    ASSERT_EQ(batch.size(), strings.size());
    for (std::size_t k = 0; k < strings.size(); ++k) {
        if (strings[k].isIdentity()) {
            EXPECT_NEAR(batch[k], 1.0, 1e-12);
            continue;
        }
        const double reference = refExpectation(s, strings[k]);
        EXPECT_NEAR(batch[k], reference, 1e-12)
            << "batch " << strings[k].toLabel();
        EXPECT_NEAR(expectation(s, strings[k]), reference, 1e-12)
            << "single " << strings[k].toLabel();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelEquivalenceSweep,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull,
                                           6ull, 7ull, 8ull, 9ull,
                                           10ull));

/**
 * Large-n equivalence: at 16 qubits the OpenMP gate paths (dim >=
 * 2^16) and the contiguous-run blocked path of perStringExpectations
 * (highest X bit >= block size) are active; at 11 qubits strings mix
 * the blocked and per-element fallback fills. Both must still match
 * the naive full-scan reference to 1e-12.
 */
TEST(Expectation, LargeSystemBlockedPathsMatchReference)
{
    for (int n : {11, 16}) {
        const Statevector s = randomStateN(n, 271 + n);
        Rng rng(1000 + n);
        std::vector<PauliString> strings;
        const char ops[4] = {'I', 'X', 'Y', 'Z'};
        for (int trial = 0; trial < 12; ++trial) {
            PauliString p(n);
            for (int q = 0; q < n; ++q)
                p.setOp(q, ops[rng.uniformInt(4)]);
            // Half the strings get a forced high-qubit X so the
            // hbit >= kBlockSize contiguous-run path triggers.
            if (trial % 2 == 0)
                p.setOp(n - 1, 'X');
            strings.push_back(p);
        }
        const auto batch = perStringExpectations(s, strings);
        for (std::size_t k = 0; k < strings.size(); ++k) {
            if (strings[k].isIdentity())
                continue;
            EXPECT_NEAR(batch[k], refExpectation(s, strings[k]), 1e-12)
                << n << "q " << strings[k].toLabel();
        }
    }
}

TEST(Expectation, ExpectationBoundsRespected)
{
    // |<P>| <= 1 for any state and non-identity string.
    const Statevector s = randomState(77);
    const char ops[3] = {'X', 'Y', 'Z'};
    for (char a : ops)
        for (char b : ops) {
            PauliString p(4);
            p.setOp(0, a);
            p.setOp(2, b);
            const double e = expectation(s, p);
            EXPECT_LE(std::fabs(e), 1.0 + 1e-12);
        }
}

} // namespace
} // namespace treevqa

/**
 * @file
 * Tests for the observability layer: the metrics registry (sharded
 * counters, mergeable log2 histograms, deterministic dumps) and the
 * flight-recorder tracer (ring-buffer wraparound, Chrome-trace
 * export on clean and crashing exits, fault-site coverage of the
 * flush path).
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "common/fault_injection.h"
#include "common/file_util.h"
#include "common/json.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "svc/sweep_dir.h"

namespace treevqa {
namespace {

std::filesystem::path
scratchDir(const std::string &name)
{
    const std::filesystem::path dir =
        std::filesystem::path(::testing::TempDir()) / ("obs_" + name);
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

/** Registry, recorder and fault injection are process-wide: every
 * test restores all three on the way out, pass or fail. */
class ObservabilityTest : public ::testing::Test
{
  protected:
    void
    TearDown() override
    {
        FaultInjection::instance().disarm();
        TraceRecorder::instance().disarm();
        TraceRecorder::instance().clear();
        TraceRecorder::instance().setExportPath("");
        MetricsRegistry::instance().reset();
    }
};

// ------------------------------------------------------------ counters

TEST_F(ObservabilityTest, ShardedCounterTotalsAreExactUnderThreads)
{
    Counter counter;
    constexpr int kThreads = 8;
    constexpr int kIncs = 20000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&counter] {
            for (int i = 0; i < kIncs; ++i)
                counter.inc();
            counter.inc(5);
        });
    for (std::thread &thread : threads)
        thread.join();
    EXPECT_EQ(counter.total(),
              static_cast<std::uint64_t>(kThreads) * (kIncs + 5));

    counter.reset();
    EXPECT_EQ(counter.total(), 0u);
}

TEST_F(ObservabilityTest, RegistryReturnsStableInstruments)
{
    Counter &a = MetricsRegistry::instance().counter("obs.test_a");
    Counter &again = MetricsRegistry::instance().counter("obs.test_a");
    EXPECT_EQ(&a, &again);
    a.inc(7);
    const MetricsSnapshot snap = MetricsRegistry::instance().snapshot();
    EXPECT_EQ(snap.counters.at("obs.test_a"), 7u);

    MetricsRegistry::instance().reset();
    // reset() zeroes in place; the cached reference stays live.
    a.inc(2);
    EXPECT_EQ(a.total(), 2u);
}

// ---------------------------------------------------------- histograms

HistogramSnapshot
observed(std::initializer_list<std::uint64_t> values)
{
    Histogram hist;
    for (const std::uint64_t v : values)
        hist.observe(v);
    return hist.snapshot();
}

TEST_F(ObservabilityTest, HistogramBucketsFollowBitWidth)
{
    EXPECT_EQ(Histogram::bucketIndex(0), 0u);
    EXPECT_EQ(Histogram::bucketIndex(1), 1u);
    EXPECT_EQ(Histogram::bucketIndex(2), 2u);
    EXPECT_EQ(Histogram::bucketIndex(3), 2u);
    EXPECT_EQ(Histogram::bucketIndex(4), 3u);
    EXPECT_EQ(Histogram::bucketIndex(1023), 10u);
    EXPECT_EQ(Histogram::bucketIndex(1024), 11u);
    EXPECT_EQ(Histogram::bucketIndex(~std::uint64_t{0}), 63u);
}

TEST_F(ObservabilityTest, HistogramMergeIsAssociative)
{
    const HistogramSnapshot a = observed({1, 5, 9, 100});
    const HistogramSnapshot b = observed({0, 0, 3, 4096});
    const HistogramSnapshot c = observed({7, 1u << 20});

    HistogramSnapshot ab = a;
    ab.merge(b);
    HistogramSnapshot ab_c = ab;
    ab_c.merge(c);

    HistogramSnapshot bc = b;
    bc.merge(c);
    HistogramSnapshot a_bc = a;
    a_bc.merge(bc);

    EXPECT_EQ(ab_c.count, a_bc.count);
    EXPECT_EQ(ab_c.sum, a_bc.sum);
    for (std::size_t i = 0; i < HistogramSnapshot::kBuckets; ++i)
        EXPECT_EQ(ab_c.buckets[i], a_bc.buckets[i]) << "bucket " << i;
    EXPECT_EQ(ab_c.count, 10u);
    EXPECT_DOUBLE_EQ(ab_c.quantile(0.5), a_bc.quantile(0.5));
    EXPECT_DOUBLE_EQ(ab_c.quantile(0.99), a_bc.quantile(0.99));
}

TEST_F(ObservabilityTest, QuantilesAreDeterministicBucketMidpoints)
{
    const HistogramSnapshot snap = observed({0, 1, 2, 3, 4});
    // Ranks: bucket 0 holds {0}, bucket 1 {1}, bucket 2 {2,3},
    // bucket 3 {4}. p50 -> rank 3 -> bucket 2 midpoint 3.0.
    EXPECT_DOUBLE_EQ(snap.quantile(0.5), 3.0);
    EXPECT_DOUBLE_EQ(snap.quantile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(snap.quantile(1.0), 6.0); // bucket 3 mid
    EXPECT_DOUBLE_EQ(HistogramSnapshot{}.quantile(0.5), 0.0);
}

// ------------------------------------------------- snapshots and dumps

MetricsSnapshot
fixedSnapshot(std::uint64_t completed, std::int64_t expansions)
{
    MetricsSnapshot snap;
    snap.counters["worker.jobs_completed"] = completed;
    snap.counters["worker.scan_rounds"] = completed * 2;
    snap.gauges["worker.spec_expansions"] = expansions;
    snap.histograms["runner.step_ns"] = observed({1000, 2000, 4000});
    return snap;
}

TEST_F(ObservabilityTest, SnapshotJsonIsDeterministicAndRoundTrips)
{
    const MetricsSnapshot snap = fixedSnapshot(3, 12);
    const std::string once = snap.toJson().dump(2);
    const std::string twice = snap.toJson().dump(2);
    EXPECT_EQ(once, twice);

    const MetricsSnapshot back =
        MetricsSnapshot::fromJson(JsonValue::parse(once));
    EXPECT_EQ(back.toJson().dump(2), once);
    EXPECT_EQ(back.counters.at("worker.jobs_completed"), 3u);
    EXPECT_EQ(back.gauges.at("worker.spec_expansions"), 12);
    EXPECT_EQ(back.histograms.at("runner.step_ns").count, 3u);
    EXPECT_EQ(back.histograms.at("runner.step_ns").sum, 7000u);
}

TEST_F(ObservabilityTest, AggregationIsByteStableAndOrderIndependent)
{
    std::vector<std::pair<std::string, JsonValue>> dumps;
    dumps.emplace_back("w0-p100", fixedSnapshot(3, 12).toJson());
    dumps.emplace_back("w1-p200", fixedSnapshot(4, 9).toJson());
    const std::string forward = aggregateMetricsJson(dumps).dump(2);
    EXPECT_EQ(forward, aggregateMetricsJson(dumps).dump(2));

    std::vector<std::pair<std::string, JsonValue>> reversed(
        dumps.rbegin(), dumps.rend());
    EXPECT_EQ(forward, aggregateMetricsJson(reversed).dump(2));

    const JsonValue merged = JsonValue::parse(forward);
    EXPECT_EQ(merged.at("processes").asUint(), 2u);
    EXPECT_EQ(merged.at("counters")
                  .at("worker.jobs_completed")
                  .asUint(),
              7u);
    // Gauges max-merge; counters sum.
    EXPECT_EQ(merged.at("gauges")
                  .at("worker.spec_expansions")
                  .asInt(),
              12);
    EXPECT_EQ(merged.at("phases").at("runner.step_ns").at("count")
                  .asUint(),
              6u);
}

TEST_F(ObservabilityTest, WriteAndReadDumpsThroughSweepDir)
{
    const auto dir = scratchDir("dumps");
    MetricsRegistry::instance().counter("obs.sweep_total").inc(11);
    EXPECT_TRUE(
        writeMetricsSnapshot(dir.string(), "w0", "w0-p1"));
    EXPECT_TRUE(
        writeMetricsSnapshot(dir.string(), "w0", "w0-p2"));

    const auto dumps = readMetricsDumps(dir.string());
    ASSERT_EQ(dumps.size(), 2u);
    EXPECT_EQ(dumps[0].first, "w0-p1");
    EXPECT_EQ(dumps[1].first, "w0-p2");
    // Both incarnations carry the full total; the aggregate sums
    // them (that is the point of per-incarnation files: a replaced
    // worker's history is never erased).
    const JsonValue merged = aggregateMetricsJson(dumps);
    EXPECT_EQ(merged.at("counters").at("obs.sweep_total").asUint(),
              22u);

    FaultInjection::instance().arm(
        R"({"faults": [{"site": "metrics.write",
        "action": "fail-errno", "errno": "EIO", "hit": 1}]})");
    EXPECT_FALSE(
        writeMetricsSnapshot(dir.string(), "w0", "w0-p3"));
}

// -------------------------------------------------------------- traces

TEST_F(ObservabilityTest, RingBufferKeepsNewestEventsInOrder)
{
    auto &recorder = TraceRecorder::instance();
    recorder.arm(/*capacity=*/8);

    // Stable names: the recorder stores the pointer until flush.
    static const char *names[20] = {
        "s00", "s01", "s02", "s03", "s04", "s05", "s06",
        "s07", "s08", "s09", "s10", "s11", "s12", "s13",
        "s14", "s15", "s16", "s17", "s18", "s19",
    };
    const std::int64_t base = TraceRecorder::nowSteadyNs();
    for (int i = 0; i < 20; ++i)
        recorder.record(names[i], base + i * 10000, 5000);
    EXPECT_EQ(recorder.bufferedEvents(), 8u);

    const auto path = scratchDir("ring") / "ring.trace.json";
    ASSERT_TRUE(recorder.flushTo(path.string()));

    std::string text;
    ASSERT_TRUE(readTextFile(path.string(), text));
    const JsonValue doc = JsonValue::parse(text);
    const JsonValue &events = doc.at("traceEvents");
    ASSERT_EQ(events.asArray().size(), 8u);
    std::int64_t last_ts = -1;
    for (int i = 0; i < 8; ++i) {
        const JsonValue &event = events.asArray()[i];
        // Oldest-first within the surviving window: exactly the last
        // 8 of the 20 recorded spans, wraparound resolved.
        EXPECT_EQ(event.at("name").asString(),
                  names[12 + i]);
        EXPECT_EQ(event.at("ph").asString(), "X");
        EXPECT_GT(event.at("ts").asInt(), last_ts);
        last_ts = event.at("ts").asInt();
    }
}

TEST_F(ObservabilityTest, DisarmedSpanStillFeedsItsHistogram)
{
    auto &recorder = TraceRecorder::instance();
    recorder.disarm();
    Histogram hist;
    {
        TRACE_SPAN_TIMED("obs.timed", hist);
    }
    EXPECT_EQ(hist.snapshot().count, 1u);
    EXPECT_EQ(recorder.bufferedEvents(), 0u);

    // Plain spans are free while disarmed: nothing is buffered.
    {
        TRACE_SPAN("obs.plain");
    }
    EXPECT_EQ(recorder.bufferedEvents(), 0u);
}

TEST_F(ObservabilityTest, FlushFaultSiteFailsClosed)
{
    auto &recorder = TraceRecorder::instance();
    recorder.arm(16);
    recorder.record("obs.fault", TraceRecorder::nowSteadyNs(), 100);

    FaultInjection::instance().arm(
        R"({"faults": [{"site": "trace.flush",
        "action": "fail-errno", "errno": "EIO", "hit": 1}]})");
    const auto path = scratchDir("flt") / "flt.trace.json";
    EXPECT_FALSE(recorder.flushTo(path.string()));
    EXPECT_FALSE(std::filesystem::exists(path));
    // The buffer is untouched: the next (unfaulted) flush succeeds.
    EXPECT_TRUE(recorder.flushTo(path.string()));
    EXPECT_TRUE(std::filesystem::exists(path));
}

TEST_F(ObservabilityTest, EmptyExportPathIsANoOp)
{
    auto &recorder = TraceRecorder::instance();
    recorder.arm(16);
    recorder.setExportPath("");
    recorder.record("obs.nopath", TraceRecorder::nowSteadyNs(), 100);
    EXPECT_TRUE(recorder.flush());
}

TEST_F(ObservabilityTest, FatalSignalExportsTraceFromCrashedChild)
{
    const auto dir = scratchDir("crash");
    const std::string path =
        sweepTracePath(dir.string(), "crashed");

    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        // Child: arm, record some work, install the crash hooks,
        // then die the way a wild pointer would. The handler must
        // flush the flight recorder before the default disposition
        // takes the process down.
        auto &recorder = TraceRecorder::instance();
        recorder.arm(64);
        recorder.setExportPath(path);
        recorder.installExitHandlers();
        {
            TRACE_SPAN("child.work");
        }
        std::raise(SIGABRT);
        ::_exit(97); // not reached
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status));
    EXPECT_EQ(WTERMSIG(status), SIGABRT);

    std::string text;
    ASSERT_TRUE(readTextFile(path, text));
    const JsonValue doc = JsonValue::parse(text);
    const JsonValue &events = doc.at("traceEvents");
    ASSERT_GE(events.asArray().size(), 1u);
    bool found = false;
    for (const JsonValue &event : events.asArray())
        if (event.at("name").asString() == "child.work")
            found = true;
    EXPECT_TRUE(found);
}

} // namespace
} // namespace treevqa

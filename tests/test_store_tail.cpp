/**
 * @file
 * Tests for the PR-8 claim-path scaling layer: the incremental
 * StoreTailReader (torn-line handling, quarantine parity with the
 * full loader, cursor invalidation after compaction), the tiered
 * shard roll/fold pipeline, the stat-cached SweepIndex, and the
 * JobResolution fold that must mirror dedupeByFingerprint exactly.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/file_util.h"
#include "dist/store_merge.h"
#include "dist/store_tail.h"
#include "svc/result_store.h"
#include "svc/sweep_dir.h"
#include "svc/sweep_index.h"

namespace treevqa {
namespace {

std::filesystem::path
scratchDir(const std::string &name)
{
    const std::filesystem::path dir =
        std::filesystem::path(::testing::TempDir()) / ("tail_" + name);
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

ScenarioSpec
tinySpec(const std::string &name, double field)
{
    ScenarioSpec spec;
    spec.name = name;
    spec.problem = "tfim";
    spec.size = 4;
    spec.field = field;
    spec.ansatz = "hea";
    spec.layers = 1;
    spec.engine.shotsPerTerm = 256;
    spec.maxIterations = 12;
    spec.seed = 99;
    spec.checkpointInterval = 4;
    return spec;
}

/** A synthetic completed record — valid spec, matching fingerprint,
 * no scenario execution needed. */
JobResult
syntheticRecord(const std::string &name, double field)
{
    JobResult r;
    r.spec = tinySpec(name, field);
    r.fingerprint = scenarioFingerprint(r.spec);
    r.completed = true;
    r.iterations = 3;
    r.trajectory = {1.0, 0.5, 0.25};
    r.bestLoss = 0.25;
    r.finalEnergy = -field;
    r.shotsUsed = 128;
    return r;
}

JobResult
syntheticFailure(const std::string &name, double field, int attempts,
                 bool timed_out = false)
{
    JobResult r;
    r.spec = tinySpec(name, field);
    r.fingerprint = scenarioFingerprint(r.spec);
    r.failed = true;
    r.attempts = attempts;
    r.timedOut = timed_out;
    r.errorMessage = "boom";
    return r;
}

std::uintmax_t
fileSize(const std::string &path)
{
    std::error_code ec;
    const std::uintmax_t size = std::filesystem::file_size(path, ec);
    return ec ? 0 : size;
}

// ------------------------------------------------------ tail reader

TEST(StoreTailReader, ConsumesOnlyAppendedBytesPerRefresh)
{
    const auto dir = scratchDir("appends");
    const std::string store = sweepStorePath(dir.string());
    ResultStore writer(store);
    writer.append(syntheticRecord("a", 0.5));
    writer.append(syntheticRecord("b", 0.7));

    StoreTailReader tail(dir.string());
    tail.refresh();
    EXPECT_EQ(tail.resolutions().size(), 2u);
    EXPECT_EQ(tail.counters().bytesRead, fileSize(store));
    EXPECT_EQ(tail.counters().fullRescans, 0u);

    const std::uintmax_t before = fileSize(store);
    writer.append(syntheticRecord("c", 0.9));
    const std::uint64_t bytes_before = tail.counters().bytesRead;
    tail.refresh();
    EXPECT_EQ(tail.resolutions().size(), 3u);
    // Only the third record's bytes were read, not the whole store.
    EXPECT_EQ(tail.counters().bytesRead - bytes_before,
              fileSize(store) - before);
    EXPECT_EQ(tail.counters().fullRescans, 0u);

    // An idle refresh reads nothing at all.
    const std::uint64_t bytes_idle = tail.counters().bytesRead;
    tail.refresh();
    EXPECT_EQ(tail.counters().bytesRead, bytes_idle);
}

TEST(StoreTailReader, TornTrailingLineIsReReadAfterSeal)
{
    const auto dir = scratchDir("torn");
    std::filesystem::create_directories(sweepShardDir(dir.string()));
    const std::string shard = sweepShardPath(dir.string(), "w0");
    ResultStore(shard).append(syntheticRecord("a", 0.5));

    const JobResult second = syntheticRecord("b", 0.7);
    const std::string line = jobResultToStoredLine(second);
    const std::size_t half = line.size() / 2;
    {
        std::ofstream out(shard, std::ios::app);
        out << line.substr(0, half); // a killed writer's fragment
    }

    StoreTailReader tail(dir.string());
    tail.refresh();
    // The unterminated tail is left unconsumed — not decoded, not
    // quarantined.
    EXPECT_EQ(tail.resolutions().size(), 1u);
    EXPECT_EQ(tail.resolutions().count(second.fingerprint), 0u);
    EXPECT_FALSE(std::filesystem::exists(quarantineDirFor(shard)));

    {
        std::ofstream out(shard, std::ios::app);
        out << line.substr(half) << "\n"; // the append completes
    }
    tail.refresh();
    ASSERT_EQ(tail.resolutions().count(second.fingerprint), 1u);
    EXPECT_TRUE(tail.resolutions().at(second.fingerprint).completed);
    EXPECT_EQ(tail.counters().quarantinedLines, 0u);
    EXPECT_EQ(tail.counters().fullRescans, 0u);
}

TEST(StoreTailReader, CrcMismatchIsQuarantinedExactlyOnce)
{
    const auto dir = scratchDir("crc_once");
    std::filesystem::create_directories(sweepShardDir(dir.string()));
    const std::string shard = sweepShardPath(dir.string(), "w0");
    const JobResult good = syntheticRecord("good", 0.5);
    const JobResult victim = syntheticRecord("victim", 0.7);
    // Flip a digit inside the victim's stored line so it still parses
    // but fails its CRC.
    std::string line = jobResultToStoredLine(victim);
    const std::string key = "\"iterations\":";
    const std::size_t digit = line.find(key);
    ASSERT_NE(digit, std::string::npos);
    char &first = line[digit + key.size()];
    first = first == '9' ? '8' : '9';
    ResultStore(shard).append(good);
    {
        std::ofstream out(shard, std::ios::app);
        out << line << "\n";
    }

    StoreTailReader tail(dir.string());
    tail.refresh();
    EXPECT_EQ(tail.resolutions().size(), 1u);
    EXPECT_EQ(tail.counters().quarantinedLines, 1u);

    // A full rescan re-reads the corrupt line, but the
    // once-per-(file, line, content) gate keeps the quarantine
    // envelope unique.
    tail.invalidate();
    tail.refresh();
    EXPECT_EQ(tail.counters().fullRescans, 1u);
    EXPECT_EQ(tail.counters().quarantinedLines, 2u);
    std::string quarantined;
    ASSERT_TRUE(readTextFile(
        (std::filesystem::path(quarantineDirFor(shard)) / "w0.jsonl")
            .string(),
        quarantined));
    std::size_t envelopes = 0;
    for (const char c : quarantined)
        if (c == '\n')
            ++envelopes;
    EXPECT_EQ(envelopes, 1u);
    EXPECT_NE(quarantined.find("crc mismatch"), std::string::npos);
}

TEST(StoreTailReader, CompactionInvalidatesCursorsAndForcesRescan)
{
    const auto dir = scratchDir("compact");
    std::filesystem::create_directories(sweepShardDir(dir.string()));
    const JobResult a = syntheticRecord("a", 0.5);
    const JobResult b = syntheticRecord("b", 0.7);
    ResultStore(sweepShardPath(dir.string(), "w0")).append(a);
    ResultStore(sweepShardPath(dir.string(), "w1")).append(b);

    StoreTailReader tail(dir.string());
    tail.refresh();
    EXPECT_EQ(tail.resolutions().size(), 2u);
    EXPECT_EQ(tail.counters().fullRescans, 0u);

    // Compaction rewrites the layout: the tracked shards vanish into
    // the canonical store, so the next refresh must start clean — and
    // reach the same verdicts.
    compactSweepStore(dir.string(), /*removeMergedShards=*/true);
    tail.refresh();
    EXPECT_EQ(tail.counters().fullRescans, 1u);
    ASSERT_EQ(tail.resolutions().size(), 2u);
    EXPECT_TRUE(tail.resolutions().at(a.fingerprint).completed);
    EXPECT_TRUE(tail.resolutions().at(b.fingerprint).completed);
}

// ------------------------------------------------------- tiered store

TEST(TieredStore, RollAndFoldPreserveEveryRecordByteIdentically)
{
    std::vector<JobResult> records;
    for (int j = 0; j < 6; ++j)
        records.push_back(
            syntheticRecord("job" + std::to_string(j), 0.4 + 0.1 * j));

    // Reference: everything through one shard, straight compaction.
    const auto ref_dir = scratchDir("tier_ref");
    std::filesystem::create_directories(
        sweepShardDir(ref_dir.string()));
    {
        ResultStore shard(sweepShardPath(ref_dir.string(), "w0"));
        for (const JobResult &r : records)
            shard.append(r);
    }
    compactSweepStore(ref_dir.string(), /*removeMergedShards=*/true);
    std::string ref_store, ref_summary;
    ASSERT_TRUE(
        readTextFile(sweepStorePath(ref_dir.string()), ref_store));
    ASSERT_TRUE(
        readTextFile(sweepSummaryPath(ref_dir.string()), ref_summary));

    // Tiered: two rolls, a fanout-2 fold, a live shard remainder.
    const auto dir = scratchDir("tier_roll");
    std::filesystem::create_directories(sweepShardDir(dir.string()));
    const std::string shard = sweepShardPath(dir.string(), "w0");
    ResultStore(shard).append(records[0]);
    ResultStore(shard).append(records[1]);
    ASSERT_TRUE(rollShardToTier(dir.string(), "w0", 1));
    EXPECT_FALSE(std::filesystem::exists(shard));
    ResultStore(shard).append(records[2]);
    ResultStore(shard).append(records[3]);
    ASSERT_TRUE(rollShardToTier(dir.string(), "w0", 2));
    EXPECT_EQ(maintainTiers(dir.string(), 2), 1u);
    ResultStore(shard).append(records[4]);
    ResultStore(shard).append(records[5]);

    // The merged view sees all six, whatever file they live in.
    const std::vector<JobResult> merged =
        loadMergedRecords(dir.string());
    EXPECT_EQ(merged.size(), 6u);

    // And the final compaction is byte-identical to the untiered run.
    const SweepMergeStats stats =
        compactSweepStore(dir.string(), /*removeMergedShards=*/true);
    EXPECT_EQ(stats.tierFiles, 1u);
    EXPECT_EQ(stats.shardFiles, 1u);
    EXPECT_EQ(stats.uniqueRecords, 6u);
    std::string store, summary;
    ASSERT_TRUE(readTextFile(sweepStorePath(dir.string()), store));
    ASSERT_TRUE(readTextFile(sweepSummaryPath(dir.string()), summary));
    EXPECT_EQ(store, ref_store);
    EXPECT_EQ(summary, ref_summary);
    EXPECT_FALSE(std::filesystem::exists(shard));
    std::size_t leftover_tiers = 0;
    std::error_code ec;
    for (const auto &entry : std::filesystem::directory_iterator(
             sweepTierDir(dir.string()), ec)) {
        (void)entry;
        ++leftover_tiers;
    }
    EXPECT_EQ(leftover_tiers, 0u);
}

TEST(TieredStore, FoldIsIdempotentAndCascades)
{
    const auto dir = scratchDir("tier_cascade");
    std::filesystem::create_directories(sweepShardDir(dir.string()));
    const std::string shard = sweepShardPath(dir.string(), "w0");
    const auto roll_two = [&](int base) {
        for (int j = base; j < base + 2; ++j) {
            ResultStore(shard).append(syntheticRecord(
                "c" + std::to_string(j), 0.4 + 0.1 * j));
            ASSERT_TRUE(rollShardToTier(
                dir.string(), "w0", static_cast<std::uint64_t>(j)));
        }
    };
    // First pair: one L0→L1 fold, nothing to cascade yet.
    roll_two(0);
    EXPECT_EQ(maintainTiers(dir.string(), 2), 1u);
    // Second pair: the L0→L1 fold completes a pair at L1, so the
    // same pass cascades with an L1→L2 fold.
    roll_two(2);
    EXPECT_EQ(maintainTiers(dir.string(), 2), 2u);
    EXPECT_EQ(maintainTiers(dir.string(), 2), 0u); // idempotent
    const std::vector<JobResult> merged =
        loadMergedRecords(dir.string());
    EXPECT_EQ(merged.size(), 4u);
}

// -------------------------------------------------------- sweep index

TEST(SweepIndex, ReexpandsOnlyWhenTheRequestChanges)
{
    const auto dir = scratchDir("index");
    JsonValue request = JsonValue::array();
    request.push_back(scenarioToJson(tinySpec("a", 0.5)));
    request.push_back(scenarioToJson(tinySpec("b", 0.7)));
    writeTextFileAtomic(sweepSpecPath(dir.string()),
                        request.dump(2) + "\n");

    SweepIndex index(dir.string());
    index.refresh();
    index.refresh();
    index.refresh();
    EXPECT_EQ(index.expansions(), 1u);
    ASSERT_EQ(index.specs().size(), 2u);
    ASSERT_EQ(index.fingerprints().size(), 2u);
    const ScenarioSpec *hit =
        index.byFingerprint(index.fingerprints()[1]);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->name, "b");
    EXPECT_EQ(index.byFingerprint("no-such-fp"), nullptr);

    request.push_back(scenarioToJson(tinySpec("c", 0.9)));
    writeTextFileAtomic(sweepSpecPath(dir.string()),
                        request.dump(2) + "\n");
    index.refresh();
    EXPECT_EQ(index.expansions(), 2u);
    EXPECT_EQ(index.specs().size(), 3u);
}

TEST(SweepIndex, MissingSpecThrowsAndDuplicatesAreRejected)
{
    const auto dir = scratchDir("index_err");
    SweepIndex index(dir.string());
    EXPECT_THROW(index.refresh(), std::runtime_error);

    const std::vector<ScenarioSpec> dupes{tinySpec("same", 0.5),
                                          tinySpec("same", 0.5)};
    EXPECT_THROW(fingerprintSpecs(dupes), std::invalid_argument);
}

// ----------------------------------------------------- resolution fold

TEST(JobResolution, FoldMirrorsDedupeSemantics)
{
    const int budget = 3;

    // Failed attempts sum across workers; timedOut is sticky.
    JobResolution r;
    r.fold(syntheticFailure("x", 0.5, 1));
    EXPECT_FALSE(r.resolved(budget));
    EXPECT_EQ(r.priorAttempts(budget), 1);
    r.fold(syntheticFailure("x", 0.5, 2, /*timed_out=*/true));
    EXPECT_EQ(r.attempts, 3);
    EXPECT_TRUE(r.timedOut);
    EXPECT_TRUE(r.resolved(budget));

    // A legacy attempts == 0 record reads as budget-exhausted and
    // dominates the sum.
    JobResolution legacy;
    legacy.fold(syntheticFailure("y", 0.5, 2));
    legacy.fold(syntheticFailure("y", 0.5, 0));
    EXPECT_EQ(legacy.attempts, 0);
    EXPECT_EQ(legacy.priorAttempts(budget), budget);
    EXPECT_TRUE(legacy.resolved(budget));

    // A completed record dominates any failure history, in any order.
    JobResolution wins;
    wins.fold(syntheticFailure("z", 0.5, 2));
    wins.fold(syntheticRecord("z", 0.5));
    wins.fold(syntheticFailure("z", 0.5, 7));
    EXPECT_TRUE(wins.completed);
    EXPECT_FALSE(wins.failed);
    EXPECT_EQ(wins.priorAttempts(budget), 0);
    EXPECT_TRUE(wins.resolved(budget));
}

} // namespace
} // namespace treevqa

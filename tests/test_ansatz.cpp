/**
 * @file
 * Tests for the ansatz builders: hardware-efficient, minimal UCCSD and
 * multi-angle QAOA.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/hardware_efficient.h"
#include "circuit/ma_qaoa.h"
#include "circuit/uccsd_min.h"
#include "common/rng.h"
#include "sim/expectation.h"

namespace treevqa {
namespace {

TEST(Hea, ParameterCountFormula)
{
    for (int n : {2, 4, 7}) {
        for (int layers : {1, 2, 5}) {
            const Ansatz a = makeHardwareEfficientAnsatz(n, layers, 0);
            EXPECT_EQ(a.numParams(), 2 * n * (layers + 1))
                << n << " qubits " << layers << " layers";
            EXPECT_EQ(a.circuit().entanglingLayers(), layers);
        }
    }
}

TEST(Hea, PreparesNormalizedState)
{
    Rng rng(1);
    const Ansatz a = makeHardwareEfficientAnsatz(5, 2, 0b10101);
    std::vector<double> theta(a.numParams());
    for (auto &t : theta)
        t = rng.uniform(-2, 2);
    const Statevector s = a.prepare(theta);
    EXPECT_NEAR(s.normSquared(), 1.0, 1e-10);
}

TEST(Hea, InitialBitsEnterTheCircuit)
{
    // At theta = 0 only the CX layers act, which map a basis state to a
    // basis state: the result must be deterministic and depend on bits.
    const Ansatz a = makeHardwareEfficientAnsatz(4, 2, 0b0011);
    const Ansatz b = makeHardwareEfficientAnsatz(4, 2, 0b0000);
    const std::vector<double> zeros(a.numParams(), 0.0);
    const Statevector sa = a.prepare(zeros);
    const Statevector sb = b.prepare(zeros);
    EXPECT_LT(sa.overlapSquared(sb), 0.5);
    // |0...0> is a CX fixed point.
    EXPECT_NEAR(sb.probability(0), 1.0, 1e-12);
}

TEST(Hea, WithInitialBitsRebinds)
{
    const Ansatz a = makeHardwareEfficientAnsatz(3, 1, 0);
    const Ansatz b = a.withInitialBits(0b111);
    EXPECT_EQ(b.initialBits(), 0b111u);
    EXPECT_EQ(b.numParams(), a.numParams());
}

TEST(Uccsd, ShapeAndReference)
{
    const Ansatz a = makeUccsdMinimalAnsatz();
    EXPECT_EQ(a.numQubits(), 4);
    EXPECT_EQ(a.numParams(), 3);
    EXPECT_EQ(a.initialBits(), 0b0011u);
    // theta = 0 leaves the Hartree-Fock state untouched (all gates are
    // Pauli exponentials).
    const Statevector s = a.prepare({0.0, 0.0, 0.0});
    EXPECT_NEAR(s.probability(0b0011), 1.0, 1e-12);
}

TEST(Uccsd, ConservesParticleNumber)
{
    // The total number operator N = sum_q (I - Z_q)/2 must stay 2 for
    // any parameters (UCCSD excitations conserve particle number).
    const Ansatz a = makeUccsdMinimalAnsatz();
    PauliSum number(4);
    for (int q = 0; q < 4; ++q) {
        number.add(0.5, PauliString(4));
        PauliString z(4);
        z.setOp(q, 'Z');
        number.add(-0.5, z);
    }
    Rng rng(5);
    for (int trial = 0; trial < 10; ++trial) {
        const std::vector<double> theta = {
            rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
        const Statevector s = a.prepare(theta);
        EXPECT_NEAR(expectation(s, number), 2.0, 1e-9);
    }
}

TEST(MaQaoa, ParameterCounts)
{
    const std::vector<QuboClause> clauses = {
        {0, 1, 1.0}, {1, 2, 0.5}, {0, 2, 2.0}};
    const int n = 3;
    for (int p : {1, 2, 3}) {
        const Ansatz ma = makeMaQaoaAnsatz(n, clauses, p, true);
        EXPECT_EQ(ma.numParams(),
                  p * (static_cast<int>(clauses.size()) + n));
        const Ansatz std_qaoa = makeMaQaoaAnsatz(n, clauses, p, false);
        EXPECT_EQ(std_qaoa.numParams(), 2 * p);
    }
}

TEST(MaQaoa, ZeroAnglesGiveUniformSuperposition)
{
    const std::vector<QuboClause> clauses = {{0, 1, 1.0}};
    const Ansatz a = makeMaQaoaAnsatz(2, clauses, 1, true);
    const std::vector<double> zeros(a.numParams(), 0.0);
    const Statevector s = a.prepare(zeros);
    for (std::uint64_t b = 0; b < 4; ++b)
        EXPECT_NEAR(s.probability(b), 0.25, 1e-12);
}

TEST(MaQaoa, StandardIsSpecialCaseOfMultiAngle)
{
    // Standard QAOA with (gamma, beta) equals ma-QAOA with all clause
    // params = gamma and all mixer params = beta (Section 6).
    const std::vector<QuboClause> clauses = {
        {0, 1, 1.0}, {1, 2, 0.7}, {0, 2, 0.4}};
    const int n = 3;
    const double gamma = 0.53, beta = 0.21;

    const Ansatz std_qaoa = makeMaQaoaAnsatz(n, clauses, 1, false);
    const Statevector s_std = std_qaoa.prepare({gamma, beta});

    const Ansatz ma = makeMaQaoaAnsatz(n, clauses, 1, true);
    std::vector<double> theta;
    for (std::size_t a = 0; a < clauses.size(); ++a)
        theta.push_back(gamma);
    for (int q = 0; q < n; ++q)
        theta.push_back(beta);
    const Statevector s_ma = ma.prepare(theta);

    EXPECT_NEAR(s_std.overlapSquared(s_ma), 1.0, 1e-10);
}

TEST(MaQaoa, PhasingRespectsWeights)
{
    // A clause of weight w phases Rzz by -w * gamma: two graphs with
    // different weights must differ for the same gamma.
    const Ansatz a1 =
        makeMaQaoaAnsatz(2, {{0, 1, 1.0}}, 1, true);
    const Ansatz a2 =
        makeMaQaoaAnsatz(2, {{0, 1, 2.0}}, 1, true);
    const std::vector<double> theta = {0.4, 0.0, 0.0};
    const Statevector s1 = a1.prepare(theta);
    const Statevector s2 = a2.prepare(theta);
    EXPECT_LT(s1.overlapSquared(s2), 1.0 - 1e-6);
}

} // namespace
} // namespace treevqa

/**
 * @file
 * Tests for the Pauli-propagation engine: untruncated propagation must
 * agree exactly with the dense statevector simulator; truncation must
 * bound the live-term count.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/hardware_efficient.h"
#include "circuit/ma_qaoa.h"
#include "common/rng.h"
#include "ham/maxcut.h"
#include "ham/spin_chains.h"
#include "paulprop/pauli_propagation.h"
#include "sim/expectation.h"

namespace treevqa {
namespace {

/** Untruncated config for exactness tests. */
PauliPropConfig
exactConfig()
{
    PauliPropConfig cfg;
    cfg.maxWeight = 64;
    cfg.coefThreshold = 0.0;
    return cfg;
}

TEST(PauliProp, SingleRxOnZExpectation)
{
    // <0| Rx^dag Z Rx |0> = cos(theta).
    Circuit c(1);
    c.rx(0, 0.9);
    PauliSum z(1);
    z.add(1.0, "Z");
    PauliPropagator prop(c, exactConfig());
    EXPECT_NEAR(prop.expectation({}, z, 0), std::cos(0.9), 1e-12);
}

TEST(PauliProp, CliffordOnlyCircuit)
{
    // H X-basis trick: <+|X|+> = 1 via propagation through H.
    Circuit c(1);
    c.h(0);
    PauliSum x(1);
    x.add(1.0, "X");
    PauliPropagator prop(c, exactConfig());
    EXPECT_NEAR(prop.expectation({}, x, 0), 1.0, 1e-12);
}

TEST(PauliProp, InitialBitsSigns)
{
    Circuit c(2); // empty circuit
    PauliSum h(2);
    h.add(1.0, "ZI");
    h.add(2.0, "IZ");
    PauliPropagator prop(c, exactConfig());
    EXPECT_NEAR(prop.expectation({}, h, 0b00), 3.0, 1e-12);
    EXPECT_NEAR(prop.expectation({}, h, 0b01), 1.0, 1e-12);
    EXPECT_NEAR(prop.expectation({}, h, 0b11), -3.0, 1e-12);
}

/** Exactness sweep: HEA circuits with random parameters vs dense
 * statevector, several seeds. */
class PropExactSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(PropExactSweep, MatchesStatevectorOnHea)
{
    Rng rng(GetParam());
    const int n = 5;
    const Ansatz ansatz = makeHardwareEfficientAnsatz(n, 2, 0b00101);
    std::vector<double> theta(ansatz.numParams());
    for (auto &t : theta)
        t = rng.uniform(-1.5, 1.5);

    const PauliSum h = xxzChain(n, 1.0, 0.8);

    const Statevector state = ansatz.prepare(theta);
    const double dense = expectation(state, h);

    PauliPropagator prop(ansatz.circuit(), exactConfig());
    const double propagated =
        prop.expectation(theta, h, ansatz.initialBits());
    EXPECT_NEAR(propagated, dense, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropExactSweep,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull,
                                           6ull));

TEST(PauliProp, MatchesStatevectorOnQaoaCircuit)
{
    // ma-QAOA uses H, Rzz, Rx — exercises the Clifford-H conjugation.
    Rng rng(11);
    WeightedGraph g;
    g.numNodes = 4;
    g.edges = {{0, 1, 1.0}, {1, 2, 0.7}, {2, 3, 1.3}, {0, 3, 0.4}};
    const Ansatz ansatz =
        makeMaQaoaAnsatz(g.numNodes, maxcutClauses(g), 2, true);
    std::vector<double> theta(ansatz.numParams());
    for (auto &t : theta)
        t = rng.uniform(-1.0, 1.0);

    const PauliSum h = maxcutHamiltonian(g);
    const Statevector state = ansatz.prepare(theta);
    const double dense = expectation(state, h);

    PauliPropagator prop(ansatz.circuit(), exactConfig());
    EXPECT_NEAR(prop.expectation(theta, h, 0), dense, 1e-9);
}

TEST(PauliProp, MultiObservableSlotsMatchSeparateRuns)
{
    Rng rng(13);
    const int n = 4;
    const Ansatz ansatz = makeHardwareEfficientAnsatz(n, 2, 0b0011);
    std::vector<double> theta(ansatz.numParams());
    for (auto &t : theta)
        t = rng.uniform(-1.0, 1.0);

    const PauliSum h1 = transverseFieldIsing(n, 1.0, 0.5);
    const PauliSum h2 = transverseFieldIsing(n, 1.0, 1.5);
    const PauliSum h3 = xxzChain(n, 1.0, 1.0);

    PauliPropagator prop(ansatz.circuit(), exactConfig());
    const auto joint = prop.expectations(theta, {h1, h2, h3},
                                         ansatz.initialBits());
    ASSERT_EQ(joint.size(), 3u);
    EXPECT_NEAR(joint[0],
                prop.expectation(theta, h1, ansatz.initialBits()),
                1e-10);
    EXPECT_NEAR(joint[1],
                prop.expectation(theta, h2, ansatz.initialBits()),
                1e-10);
    EXPECT_NEAR(joint[2],
                prop.expectation(theta, h3, ansatz.initialBits()),
                1e-10);
}

TEST(PauliProp, WeightTruncationBoundsTerms)
{
    Rng rng(17);
    const int n = 8;
    const Ansatz ansatz = makeHardwareEfficientAnsatz(n, 3, 0);
    std::vector<double> theta(ansatz.numParams());
    for (auto &t : theta)
        t = rng.uniform(-1.5, 1.5);
    const PauliSum h = transverseFieldIsing(n, 1.0, 1.0);

    PauliPropConfig tight;
    tight.maxWeight = 2;
    PauliPropagator truncated(ansatz.circuit(), tight);
    truncated.expectation(theta, h, 0);
    const std::size_t small_count = truncated.lastTermCount();

    PauliPropagator full(ansatz.circuit(), exactConfig());
    full.expectation(theta, h, 0);
    EXPECT_LE(small_count, full.lastTermCount());
}

TEST(PauliProp, TruncationBiasBoundedAndVanishesAtFullWeight)
{
    // Weight truncation carries an O(1) bias on circularly-entangled
    // circuits (the CX ring spreads support at full amplitude); the
    // contract is: bias bounded at the paper's weight-8 cap, exactly
    // zero once the cap reaches the register width.
    Rng rng(19);
    const int n = 10;
    const Ansatz ansatz = makeHardwareEfficientAnsatz(n, 1, 0);
    std::vector<double> theta(ansatz.numParams());
    for (auto &t : theta)
        t = rng.uniform(-0.3, 0.3);
    const PauliSum h = transverseFieldIsing(n, 1.0, 1.0);

    const Statevector state = ansatz.prepare(theta);
    const double dense = expectation(state, h);

    PauliPropConfig cfg;
    cfg.maxWeight = 8;
    cfg.coefThreshold = 1e-10;
    PauliPropagator truncated(ansatz.circuit(), cfg);
    EXPECT_NEAR(truncated.expectation(theta, h, 0), dense,
                0.15 * std::fabs(dense));

    cfg.maxWeight = n;
    PauliPropagator full(ansatz.circuit(), cfg);
    EXPECT_NEAR(full.expectation(theta, h, 0), dense, 1e-8);
}

TEST(PauliProp, HardCapKeepsHeaviest)
{
    Rng rng(23);
    const int n = 6;
    const Ansatz ansatz = makeHardwareEfficientAnsatz(n, 2, 0);
    std::vector<double> theta(ansatz.numParams());
    for (auto &t : theta)
        t = rng.uniform(-1.5, 1.5);
    const PauliSum h = xxzChain(n, 1.0, 0.9);

    PauliPropConfig capped;
    capped.maxWeight = 64;
    capped.maxTerms = 64;
    PauliPropagator prop(ansatz.circuit(), capped);
    prop.expectation(theta, h, 0);
    EXPECT_LE(prop.lastTermCount(), 64u);
}

TEST(PauliProp, LargeSystemRuns)
{
    // 25 qubits is far beyond dense simulation; weight-truncated
    // propagation must complete and return a finite value.
    Rng rng(29);
    const int n = 25;
    const Ansatz ansatz = makeHardwareEfficientAnsatz(n, 2, 0);
    std::vector<double> theta(ansatz.numParams());
    for (auto &t : theta)
        t = rng.uniform(-0.3, 0.3);
    const PauliSum h = transverseFieldIsing(n, 1.0, 1.0);

    PauliPropConfig cfg;
    cfg.maxWeight = 8;
    cfg.coefThreshold = 1e-8;
    PauliPropagator prop(ansatz.circuit(), cfg);
    const double e = prop.expectation(theta, h, 0);
    EXPECT_TRUE(std::isfinite(e));
    // Energy of any state is bounded by the l1 norm.
    EXPECT_LE(std::fabs(e), h.l1NormWithIdentity() + 1e-6);
}

} // namespace
} // namespace treevqa

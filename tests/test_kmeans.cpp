/**
 * @file
 * Tests for k-means (spectral clustering's final stage).
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/kmeans.h"

namespace treevqa {
namespace {

/** Two well-separated 2-D blobs. */
std::vector<std::vector<double>>
twoBlobs(Rng &rng, int per_blob)
{
    std::vector<std::vector<double>> pts;
    for (int i = 0; i < per_blob; ++i)
        pts.push_back({rng.normal(0.0, 0.1), rng.normal(0.0, 0.1)});
    for (int i = 0; i < per_blob; ++i)
        pts.push_back({rng.normal(5.0, 0.1), rng.normal(5.0, 0.1)});
    return pts;
}

TEST(KMeans, SeparatesTwoBlobs)
{
    Rng rng(1);
    const auto pts = twoBlobs(rng, 20);
    const KMeansResult res = kmeans(pts, 2, rng);
    // All first-half labels equal, all second-half labels equal and
    // different.
    for (int i = 1; i < 20; ++i)
        EXPECT_EQ(res.assignment[i], res.assignment[0]);
    for (int i = 21; i < 40; ++i)
        EXPECT_EQ(res.assignment[i], res.assignment[20]);
    EXPECT_NE(res.assignment[0], res.assignment[20]);
}

TEST(KMeans, InertiaSmallForTightBlobs)
{
    Rng rng(2);
    const auto pts = twoBlobs(rng, 25);
    const KMeansResult res = kmeans(pts, 2, rng);
    EXPECT_LT(res.inertia, 5.0);
}

TEST(KMeans, KEqualsNTrivial)
{
    Rng rng(3);
    const std::vector<std::vector<double>> pts = {
        {0.0}, {1.0}, {2.0}};
    const KMeansResult res = kmeans(pts, 3, rng);
    EXPECT_EQ(res.assignment.size(), 3u);
    // Each point its own cluster.
    EXPECT_NE(res.assignment[0], res.assignment[1]);
    EXPECT_NE(res.assignment[1], res.assignment[2]);
}

TEST(KMeans, KGreaterThanN)
{
    Rng rng(3);
    const std::vector<std::vector<double>> pts = {{0.0}, {9.0}};
    const KMeansResult res = kmeans(pts, 5, rng);
    EXPECT_EQ(res.assignment.size(), 2u);
}

TEST(KMeans, SingleCluster)
{
    Rng rng(4);
    const auto pts = twoBlobs(rng, 10);
    const KMeansResult res = kmeans(pts, 1, rng);
    for (int a : res.assignment)
        EXPECT_EQ(a, 0);
    EXPECT_EQ(res.centroids.size(), 1u);
}

TEST(KMeans, NonEmptyClustersEvenWithDuplicatePoints)
{
    Rng rng(5);
    // Many duplicates plus two outliers: k = 2 must be non-empty.
    std::vector<std::vector<double>> pts(10, {1.0, 1.0});
    pts.push_back({50.0, 50.0});
    const KMeansResult res = kmeans(pts, 2, rng);
    int count0 = 0, count1 = 0;
    for (int a : res.assignment)
        (a == 0 ? count0 : count1)++;
    EXPECT_GT(count0, 0);
    EXPECT_GT(count1, 0);
}

TEST(KMeans, DeterministicForSameSeed)
{
    Rng rng_a(7), rng_b(7);
    Rng gen(8);
    const auto pts = twoBlobs(gen, 15);
    const KMeansResult a = kmeans(pts, 2, rng_a);
    const KMeansResult b = kmeans(pts, 2, rng_b);
    EXPECT_EQ(a.assignment, b.assignment);
    EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

/** Cluster-count sweep on 3 well-separated blobs. */
class KMeansKSweep : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(KMeansKSweep, AssignmentsInRange)
{
    const std::size_t k = GetParam();
    Rng rng(11);
    std::vector<std::vector<double>> pts;
    for (int blob = 0; blob < 3; ++blob)
        for (int i = 0; i < 12; ++i)
            pts.push_back({rng.normal(blob * 10.0, 0.2),
                           rng.normal(blob * 10.0, 0.2)});
    const KMeansResult res = kmeans(pts, k, rng);
    for (int a : res.assignment) {
        EXPECT_GE(a, 0);
        EXPECT_LT(static_cast<std::size_t>(a), k);
    }
}

INSTANTIATE_TEST_SUITE_P(Ks, KMeansKSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 6u));

} // namespace
} // namespace treevqa

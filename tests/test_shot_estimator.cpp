/**
 * @file
 * Tests for the finite-shot estimator and shot accounting (Section 7.3
 * cost model).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "ham/spin_chains.h"
#include "sim/shot_estimator.h"

namespace treevqa {
namespace {

TEST(ShotEstimator, EvalCostFollowsPaperFormula)
{
    const PauliSum h = transverseFieldIsing(5, 1.0, 1.0); // 9 terms
    ShotEstimator est(4096);
    EXPECT_EQ(est.evalCost(h),
              4096ull * static_cast<std::uint64_t>(h.numMeasuredTerms()));
}

TEST(ShotEstimator, IdentityTermIsFree)
{
    PauliSum h(2);
    h.add(10.0, "II");
    h.add(1.0, "ZZ");
    ShotEstimator est(4096);
    EXPECT_EQ(est.evalCost(h), 4096ull);
}

TEST(ShotEstimator, NoiselessModePassesThrough)
{
    PauliSum h(2);
    h.add(0.5, "ZI");
    h.add(2.0, "II");
    ShotEstimator est(4096, /*inject_noise=*/false);
    Rng rng(1);
    const ShotEstimate e = est.estimate(h, {0.25, 1.0}, rng);
    EXPECT_DOUBLE_EQ(e.energy, 0.5 * 0.25 + 2.0);
    EXPECT_DOUBLE_EQ(e.termEstimates[0], 0.25);
}

TEST(ShotEstimator, IdentityTermExactUnderNoise)
{
    PauliSum h(2);
    h.add(3.0, "II");
    h.add(1.0, "XX");
    ShotEstimator est(64, true);
    Rng rng(2);
    const ShotEstimate e = est.estimate(h, {1.0, 0.3}, rng);
    EXPECT_DOUBLE_EQ(e.termEstimates[0], 1.0);
}

TEST(ShotEstimator, EstimatesClampedToPhysicalRange)
{
    PauliSum h(1);
    h.add(1.0, "Z");
    ShotEstimator est(4, true); // huge noise
    Rng rng(3);
    for (int i = 0; i < 200; ++i) {
        const ShotEstimate e = est.estimate(h, {0.9}, rng);
        EXPECT_GE(e.termEstimates[0], -1.0);
        EXPECT_LE(e.termEstimates[0], 1.0);
    }
}

TEST(ShotEstimator, UnbiasedAndVarianceMatchesFormula)
{
    PauliSum h(1);
    h.add(1.0, "Z");
    const double truth = 0.6;
    const std::uint64_t shots = 1024;
    ShotEstimator est(shots, true);
    Rng rng(4);

    const int trials = 20000;
    double sum = 0.0, sum2 = 0.0;
    for (int i = 0; i < trials; ++i) {
        const double e = est.estimate(h, {truth}, rng).energy;
        sum += e;
        sum2 += e * e;
    }
    const double mean = sum / trials;
    const double var = sum2 / trials - mean * mean;
    const double expected_var = (1.0 - truth * truth) / shots;
    EXPECT_NEAR(mean, truth, 3e-4);
    EXPECT_NEAR(var, expected_var, expected_var * 0.1);
}

TEST(ShotEstimator, ZeroShotsFallsBackToDefault)
{
    ShotEstimator est(0);
    EXPECT_EQ(est.shotsPerTerm(), kDefaultShotsPerTerm);
    EXPECT_FALSE(est.injectsNoise());
}

TEST(ShotEstimator, ShotsUsedReported)
{
    const PauliSum h = transverseFieldIsing(3, 1.0, 0.5);
    ShotEstimator est(128);
    Rng rng(5);
    std::vector<double> exact(h.numTerms(), 0.0);
    const ShotEstimate e = est.estimate(h, exact, rng);
    EXPECT_EQ(e.shotsUsed, est.evalCost(h));
}

TEST(ShotLedger, Accumulates)
{
    ShotLedger ledger;
    EXPECT_EQ(ledger.total(), 0u);
    ledger.charge(100);
    ledger.charge(250);
    EXPECT_EQ(ledger.total(), 350u);
    ledger.reset();
    EXPECT_EQ(ledger.total(), 0u);
}

/** Variance scaling sweep: doubling shots halves the variance. */
class ShotScalingSweep
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ShotScalingSweep, VarianceInverseInShots)
{
    const std::uint64_t shots = GetParam();
    PauliSum h(1);
    h.add(1.0, "X");
    ShotEstimator est(shots, true);
    Rng rng(6);
    const int trials = 8000;
    double sum = 0.0, sum2 = 0.0;
    for (int i = 0; i < trials; ++i) {
        const double e = est.estimate(h, {0.0}, rng).energy;
        sum += e;
        sum2 += e * e;
    }
    const double var = sum2 / trials - (sum / trials) * (sum / trials);
    EXPECT_NEAR(var, 1.0 / shots, 0.15 / shots);
}

INSTANTIATE_TEST_SUITE_P(Shots, ShotScalingSweep,
                         ::testing::Values(256ull, 1024ull, 4096ull));

} // namespace
} // namespace treevqa

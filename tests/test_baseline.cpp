/**
 * @file
 * Tests for the conventional-VQA baseline runner (Section 7.3).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/hardware_efficient.h"
#include "core/baseline.h"
#include "ham/spin_chains.h"
#include "opt/spsa.h"

namespace treevqa {
namespace {

std::vector<VqaTask>
tfimTasks(int sites, int count)
{
    auto tasks =
        makeTasks("tfim", tfimFamily(sites, 0.5, 1.5, count), 0);
    solveGroundEnergies(tasks);
    return tasks;
}

BaselineConfig
quickConfig(std::uint64_t budget, int iters)
{
    BaselineConfig cfg;
    cfg.shotBudget = budget;
    cfg.maxIterationsPerTask = iters;
    cfg.metricsInterval = 5;
    cfg.seed = 21;
    return cfg;
}

TEST(Baseline, SharesBudgetEqually)
{
    const auto tasks = tfimTasks(4, 4);
    const Ansatz ansatz = makeHardwareEfficientAnsatz(4, 2, 0);
    Spsa proto(SpsaConfig{}, 1);

    const std::uint64_t budget = 60'000'000ull;
    const BaselineResult res =
        runBaseline(tasks, ansatz, proto, quickConfig(budget, 100000));
    // Total close to the budget (each task stops at its share).
    EXPECT_LE(res.totalShots, budget + budget / 4);
    EXPECT_GT(res.totalShots, budget / 2);
}

TEST(Baseline, IterationCapRespected)
{
    const auto tasks = tfimTasks(3, 3);
    const Ansatz ansatz = makeHardwareEfficientAnsatz(3, 2, 0);
    Spsa proto(SpsaConfig{}, 2);
    const BaselineResult res =
        runBaseline(tasks, ansatz, proto, quickConfig(1ull << 62, 40));
    // 3 tasks x 40 iterations x 2 evals x terms x 4096.
    const std::uint64_t per_eval =
        4096ull * tasks[0].hamiltonian.numMeasuredTerms();
    EXPECT_EQ(res.totalShots, 3ull * 40ull * 2ull * per_eval);
}

TEST(Baseline, OutcomesPerTask)
{
    const auto tasks = tfimTasks(4, 5);
    const Ansatz ansatz = makeHardwareEfficientAnsatz(4, 2, 0);
    Spsa proto(SpsaConfig{}, 3);
    const BaselineResult res =
        runBaseline(tasks, ansatz, proto, quickConfig(1ull << 62, 60));
    ASSERT_EQ(res.outcomes.size(), tasks.size());
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        EXPECT_TRUE(std::isfinite(res.outcomes[i].bestEnergy));
        EXPECT_GE(res.outcomes[i].bestEnergy,
                  tasks[i].groundEnergy - 1e-8);
        EXPECT_LE(res.outcomes[i].fidelity, 1.0 + 1e-12);
    }
}

TEST(Baseline, ImprovesOverIterations)
{
    const auto tasks = tfimTasks(4, 3);
    const Ansatz ansatz = makeHardwareEfficientAnsatz(4, 2, 0);
    Spsa proto(SpsaConfig{}, 4);
    const BaselineResult res =
        runBaseline(tasks, ansatz, proto, quickConfig(1ull << 62, 150));
    ASSERT_GE(res.trace.size(), 3u);
    const double early = minFidelity(res.trace.front(), tasks);
    const double late = minFidelity(res.trace.back(), tasks);
    EXPECT_GT(late, early);
}

TEST(Baseline, WarmStartParametersApplied)
{
    // With zero iterations of improvement allowed, the warm start
    // determines the outcome; verify the trace reflects it.
    const auto tasks = tfimTasks(3, 2);
    const Ansatz ansatz = makeHardwareEfficientAnsatz(3, 2, 0);
    Spsa proto(SpsaConfig{}, 5);
    BaselineConfig cfg = quickConfig(1ull << 62, 3);

    const std::vector<double> warm(ansatz.numParams(), 0.3);
    const BaselineResult res =
        runBaseline(tasks, ansatz, proto, cfg, warm);
    EXPECT_EQ(res.outcomes.size(), tasks.size());
    // No crash and valid energies is the contract here.
    for (const auto &o : res.outcomes)
        EXPECT_TRUE(std::isfinite(o.bestEnergy));
}

TEST(Baseline, TraceMonotone)
{
    const auto tasks = tfimTasks(3, 3);
    const Ansatz ansatz = makeHardwareEfficientAnsatz(3, 2, 0);
    Spsa proto(SpsaConfig{}, 6);
    const BaselineResult res =
        runBaseline(tasks, ansatz, proto, quickConfig(1ull << 62, 60));
    for (std::size_t s = 1; s < res.trace.size(); ++s) {
        EXPECT_GE(res.trace[s].shots, res.trace[s - 1].shots);
        for (std::size_t i = 0; i < tasks.size(); ++i)
            EXPECT_LE(res.trace[s].bestEnergies[i],
                      res.trace[s - 1].bestEnergies[i] + 1e-12);
    }
}

TEST(Baseline, DeterministicForSameSeed)
{
    const auto tasks = tfimTasks(3, 2);
    const Ansatz ansatz = makeHardwareEfficientAnsatz(3, 2, 0);
    Spsa proto(SpsaConfig{}, 7);
    const BaselineResult a =
        runBaseline(tasks, ansatz, proto, quickConfig(1ull << 62, 30));
    const BaselineResult b =
        runBaseline(tasks, ansatz, proto, quickConfig(1ull << 62, 30));
    for (std::size_t i = 0; i < a.outcomes.size(); ++i)
        EXPECT_DOUBLE_EQ(a.outcomes[i].bestEnergy,
                         b.outcomes[i].bestEnergy);
}

} // namespace
} // namespace treevqa

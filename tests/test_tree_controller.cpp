/**
 * @file
 * Tests for the TreeVQA central controller (Algorithm 1).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/hardware_efficient.h"
#include "core/tree_controller.h"
#include "ham/spin_chains.h"
#include "opt/spsa.h"

namespace treevqa {
namespace {

std::vector<VqaTask>
tfimTasks(int sites, int count, double lo = 0.5, double hi = 1.5)
{
    auto tasks = makeTasks("tfim", tfimFamily(sites, lo, hi, count), 0);
    solveGroundEnergies(tasks);
    return tasks;
}

TreeVqaConfig
quickConfig(std::uint64_t budget, int rounds)
{
    TreeVqaConfig cfg;
    cfg.shotBudget = budget;
    cfg.maxRounds = rounds;
    cfg.metricsInterval = 5;
    cfg.seed = 11;
    return cfg;
}

TEST(TreeController, RespectsShotBudget)
{
    const auto tasks = tfimTasks(4, 4);
    const Ansatz ansatz = makeHardwareEfficientAnsatz(4, 2, 0);
    Spsa proto(SpsaConfig{}, 1);

    const std::uint64_t budget = 40'000'000ull;
    TreeController controller(tasks, ansatz, proto,
                              quickConfig(budget, 100000));
    const TreeVqaResult res = controller.run();
    EXPECT_GE(res.totalShots, budget);
    // Overshoot bounded by one round of all clusters.
    EXPECT_LT(res.totalShots, budget + budget / 2);
}

TEST(TreeController, StopsAtMaxRounds)
{
    const auto tasks = tfimTasks(3, 3);
    const Ansatz ansatz = makeHardwareEfficientAnsatz(3, 2, 0);
    Spsa proto(SpsaConfig{}, 1);
    TreeController controller(tasks, ansatz, proto,
                              quickConfig(1ull << 62, 25));
    const TreeVqaResult res = controller.run();
    EXPECT_EQ(res.rounds, 25);
}

TEST(TreeController, OutcomesCoverEveryTask)
{
    const auto tasks = tfimTasks(4, 5);
    const Ansatz ansatz = makeHardwareEfficientAnsatz(4, 2, 0);
    Spsa proto(SpsaConfig{}, 1);
    TreeController controller(tasks, ansatz, proto,
                              quickConfig(1ull << 62, 120));
    const TreeVqaResult res = controller.run();
    ASSERT_EQ(res.outcomes.size(), tasks.size());
    for (const auto &o : res.outcomes) {
        EXPECT_TRUE(std::isfinite(o.bestEnergy));
        EXPECT_GE(o.bestClusterId, 0);
        EXPECT_LE(o.fidelity, 1.0 + 1e-12);
    }
}

TEST(TreeController, EnergiesRespectVariationalBound)
{
    // Variational principle: every reported energy >= ground energy.
    const auto tasks = tfimTasks(4, 4);
    const Ansatz ansatz = makeHardwareEfficientAnsatz(4, 2, 0);
    Spsa proto(SpsaConfig{}, 2);
    TreeController controller(tasks, ansatz, proto,
                              quickConfig(1ull << 62, 150));
    const TreeVqaResult res = controller.run();
    for (std::size_t i = 0; i < tasks.size(); ++i)
        EXPECT_GE(res.outcomes[i].bestEnergy,
                  tasks[i].groundEnergy - 1e-8);
}

TEST(TreeController, TraceIsMonotoneInShots)
{
    const auto tasks = tfimTasks(4, 4);
    const Ansatz ansatz = makeHardwareEfficientAnsatz(4, 2, 0);
    Spsa proto(SpsaConfig{}, 3);
    TreeController controller(tasks, ansatz, proto,
                              quickConfig(1ull << 62, 100));
    const TreeVqaResult res = controller.run();
    ASSERT_GT(res.trace.size(), 2u);
    for (std::size_t s = 1; s < res.trace.size(); ++s) {
        EXPECT_GE(res.trace[s].shots, res.trace[s - 1].shots);
        // Best-so-far energies never regress.
        for (std::size_t i = 0; i < tasks.size(); ++i)
            EXPECT_LE(res.trace[s].bestEnergies[i],
                      res.trace[s - 1].bestEnergies[i] + 1e-12);
    }
}

TEST(TreeController, SplitsGrowTheTree)
{
    // A very dissimilar family long past stall must have split.
    const auto tasks = tfimTasks(4, 6, 0.2, 2.2);
    const Ansatz ansatz = makeHardwareEfficientAnsatz(4, 2, 0);
    Spsa proto(SpsaConfig{}, 4);
    TreeVqaConfig cfg = quickConfig(1ull << 62, 400);
    TreeController controller(tasks, ansatz, proto, cfg);
    const TreeVqaResult res = controller.run();
    EXPECT_GT(res.splitCount, 0);
    EXPECT_GT(res.maxTreeLevel, 1);
    EXPECT_GT(res.finalClusterCount, 1u);
    EXPECT_GT(res.criticalDepthFraction, 0.0);
    EXPECT_LE(res.criticalDepthFraction, 1.0 + 1e-12);
}

TEST(TreeController, RootClustersGroupedByInitialState)
{
    // Two initial-state groups -> at least two clusters from round 1,
    // and members never mix across groups.
    auto tasks = tfimTasks(4, 4);
    tasks[0].initialBits = 0b0011;
    tasks[1].initialBits = 0b0011;
    tasks[2].initialBits = 0b1100;
    tasks[3].initialBits = 0b1100;

    const Ansatz ansatz = makeHardwareEfficientAnsatz(4, 2, 0);
    Spsa proto(SpsaConfig{}, 5);
    TreeController controller(tasks, ansatz, proto,
                              quickConfig(1ull << 62, 30));
    const TreeVqaResult res = controller.run();
    EXPECT_GE(res.finalClusterCount, 2u);
}

TEST(TreeController, DeterministicForSameSeed)
{
    const auto tasks = tfimTasks(3, 3);
    const Ansatz ansatz = makeHardwareEfficientAnsatz(3, 2, 0);
    Spsa proto(SpsaConfig{}, 6);

    TreeController a(tasks, ansatz, proto, quickConfig(1ull << 62, 60));
    TreeController b(tasks, ansatz, proto, quickConfig(1ull << 62, 60));
    const TreeVqaResult ra = a.run();
    const TreeVqaResult rb = b.run();
    ASSERT_EQ(ra.outcomes.size(), rb.outcomes.size());
    for (std::size_t i = 0; i < ra.outcomes.size(); ++i)
        EXPECT_DOUBLE_EQ(ra.outcomes[i].bestEnergy,
                         rb.outcomes[i].bestEnergy);
    EXPECT_EQ(ra.totalShots, rb.totalShots);
}

TEST(TreeController, SimilarityMatrixShape)
{
    const auto tasks = tfimTasks(3, 5);
    const Ansatz ansatz = makeHardwareEfficientAnsatz(3, 2, 0);
    Spsa proto(SpsaConfig{}, 7);
    TreeController controller(tasks, ansatz, proto,
                              quickConfig(1, 1));
    EXPECT_EQ(controller.similarity().rows(), tasks.size());
    EXPECT_DOUBLE_EQ(controller.similarity()(0, 0), 1.0);
}

TEST(TreeController, PostProcessingOnlyImproves)
{
    const auto tasks = tfimTasks(4, 5, 0.3, 1.8);
    const Ansatz ansatz = makeHardwareEfficientAnsatz(4, 2, 0);
    Spsa proto(SpsaConfig{}, 8);
    TreeController controller(tasks, ansatz, proto,
                              quickConfig(1ull << 62, 200));
    const TreeVqaResult res = controller.run();
    // Post-processing selects the min across clusters: final outcomes
    // must be <= the last pre-post-processing trace entry.
    ASSERT_GE(res.trace.size(), 2u);
    const auto &pre = res.trace[res.trace.size() - 2];
    for (std::size_t i = 0; i < tasks.size(); ++i)
        EXPECT_LE(res.outcomes[i].bestEnergy,
                  pre.bestEnergies[i] + 1e-12);
}

} // namespace
} // namespace treevqa

/**
 * @file
 * Tests for the VQA cluster (Algorithm 2): stepping, loss windows,
 * split triggers and spectral partitioning.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "circuit/hardware_efficient.h"
#include "cluster/similarity.h"
#include "core/vqa_cluster.h"
#include "ham/spin_chains.h"
#include "opt/spsa.h"

namespace treevqa {
namespace {

std::unique_ptr<VqaCluster>
makeCluster(const std::vector<PauliSum> &fam, const ClusterConfig &ccfg,
            bool noise = false, std::uint64_t seed = 1)
{
    const int n = fam.front().numQubits();
    const Ansatz ansatz = makeHardwareEfficientAnsatz(n, 2, 0);
    EngineConfig engine;
    engine.injectShotNoise = noise;
    std::vector<std::size_t> indices(fam.size());
    for (std::size_t i = 0; i < fam.size(); ++i)
        indices[i] = i;
    auto opt = std::make_unique<Spsa>(SpsaConfig{}, seed);
    return std::make_unique<VqaCluster>(
        0, 1, -1, indices, fam, ansatz, engine, ccfg, std::move(opt),
        std::vector<double>(ansatz.numParams(), 0.0), Rng(seed));
}

TEST(VqaCluster, StepChargesShotsAndRecordsLoss)
{
    const auto fam = tfimFamily(4, 0.5, 1.5, 4);
    ClusterConfig ccfg;
    auto cluster = makeCluster(fam, ccfg);

    ShotLedger ledger;
    EXPECT_TRUE(std::isnan(cluster->lastLoss()));
    cluster->step(ledger);
    EXPECT_FALSE(std::isnan(cluster->lastLoss()));
    // SPSA: 2 evaluations x superset terms x 4096.
    EXPECT_EQ(ledger.total(),
              2ull * cluster->objective().evalCost());
    EXPECT_EQ(cluster->iterations(), 1);
}

TEST(VqaCluster, LossDecreasesOverWarmup)
{
    const auto fam = tfimFamily(4, 0.9, 1.1, 3);
    ClusterConfig ccfg;
    ccfg.warmupIterations = 1000; // never split in this test
    auto cluster = makeCluster(fam, ccfg);

    ShotLedger ledger;
    double first = 0.0, last = 0.0;
    for (int i = 0; i < 60; ++i) {
        cluster->step(ledger);
        if (i == 4)
            first = cluster->lastLoss();
    }
    last = cluster->lastLoss();
    EXPECT_LT(last, first);
}

TEST(VqaCluster, NoSplitDuringWarmup)
{
    const auto fam = tfimFamily(3, 0.5, 1.5, 3);
    ClusterConfig ccfg;
    ccfg.warmupIterations = 50;
    auto cluster = makeCluster(fam, ccfg);
    ShotLedger ledger;
    for (int i = 0; i < 49; ++i)
        EXPECT_EQ(cluster->step(ledger), VqaCluster::Status::Running);
}

TEST(VqaCluster, StalledOptimizationRequestsSplit)
{
    // Zero learning rate: the loss window is flat, the relative slope
    // falls below eps_split and a split must be requested.
    const auto fam = tfimFamily(3, 0.5, 1.5, 3);
    const Ansatz ansatz = makeHardwareEfficientAnsatz(3, 2, 0);
    EngineConfig engine;
    engine.injectShotNoise = false;
    ClusterConfig ccfg;
    ccfg.warmupIterations = 5;
    ccfg.windowSize = 6;
    // A frozen optimizer still jitters the loss through its +/- c
    // perturbations; a generous stall threshold makes the flat window
    // unambiguous.
    ccfg.epsSplit = 0.05;
    SpsaConfig frozen;
    frozen.a = 0.0; // no movement
    frozen.c = 0.01;
    VqaCluster cluster(
        0, 1, -1, {0, 1, 2}, fam, ansatz, engine, ccfg,
        std::make_unique<Spsa>(frozen, 3),
        std::vector<double>(ansatz.numParams(), 0.1), Rng(3));

    ShotLedger ledger;
    VqaCluster::Status status = VqaCluster::Status::Running;
    for (int i = 0; i < 30; ++i) {
        status = cluster.step(ledger);
        if (status == VqaCluster::Status::SplitRequested)
            break;
    }
    EXPECT_EQ(status, VqaCluster::Status::SplitRequested);
    EXPECT_LT(std::fabs(cluster.mixedSlope()),
              ccfg.epsSplit + 1e-12);
}

TEST(VqaCluster, IndividualSlopesReported)
{
    const auto fam = tfimFamily(3, 0.8, 1.2, 4);
    ClusterConfig ccfg;
    ccfg.warmupIterations = 1000;
    auto cluster = makeCluster(fam, ccfg);
    ShotLedger ledger;
    for (int i = 0; i < 20; ++i)
        cluster->step(ledger);
    const auto slopes = cluster->individualSlopes();
    EXPECT_EQ(slopes.size(), fam.size());
}

TEST(VqaCluster, PartitionSeparatesDissimilarGroups)
{
    // Family with two far-apart parameter groups: the split must put
    // each group in its own child.
    std::vector<PauliSum> fam;
    for (double h : {0.10, 0.12, 0.14})
        fam.push_back(transverseFieldIsing(3, 1.0, h));
    for (double h : {2.50, 2.52, 2.54})
        fam.push_back(transverseFieldIsing(3, 1.0, h));

    ClusterConfig ccfg;
    auto cluster = makeCluster(fam, ccfg);
    const Matrix sim = similarityMatrix(fam);
    Rng rng(7);
    const auto [left, right] = cluster->partitionMembers(sim, rng);
    EXPECT_FALSE(left.empty());
    EXPECT_FALSE(right.empty());
    EXPECT_EQ(left.size() + right.size(), fam.size());
    // Contiguity of the two halves.
    const auto in_left = [&](std::size_t idx) {
        for (std::size_t x : left)
            if (x == idx)
                return true;
        return false;
    };
    EXPECT_EQ(in_left(0), in_left(1));
    EXPECT_EQ(in_left(1), in_left(2));
    EXPECT_EQ(in_left(3), in_left(4));
    EXPECT_NE(in_left(0), in_left(3));
}

TEST(VqaCluster, RearmMonitorSuppressesTriggers)
{
    const auto fam = tfimFamily(3, 0.5, 1.5, 2);
    const Ansatz ansatz = makeHardwareEfficientAnsatz(3, 2, 0);
    EngineConfig engine;
    engine.injectShotNoise = false;
    ClusterConfig ccfg;
    ccfg.warmupIterations = 2;
    ccfg.windowSize = 4;
    ccfg.postSplitGrace = 50;
    ccfg.epsSplit = 0.05;
    SpsaConfig frozen;
    frozen.a = 0.0;
    frozen.c = 0.01;
    VqaCluster cluster(
        0, 1, -1, {0, 1}, fam, ansatz, engine, ccfg,
        std::make_unique<Spsa>(frozen, 3),
        std::vector<double>(ansatz.numParams(), 0.1), Rng(3));

    ShotLedger ledger;
    // Reach a split request, re-arm, then verify the grace period.
    VqaCluster::Status status = VqaCluster::Status::Running;
    for (int i = 0; i < 20; ++i)
        status = cluster.step(ledger);
    ASSERT_EQ(status, VqaCluster::Status::SplitRequested);
    cluster.rearmMonitor();
    for (int i = 0; i < 30; ++i)
        EXPECT_EQ(cluster.step(ledger), VqaCluster::Status::Running);
}

TEST(VqaCluster, ExactTaskEnergiesMatchObjective)
{
    const auto fam = tfimFamily(4, 0.7, 1.3, 3);
    ClusterConfig ccfg;
    auto cluster = makeCluster(fam, ccfg);
    ShotLedger ledger;
    for (int i = 0; i < 5; ++i)
        cluster->step(ledger);
    const auto energies = cluster->exactTaskEnergies();
    const auto reference =
        cluster->objective().exactTaskEnergies(cluster->params());
    ASSERT_EQ(energies.size(), reference.size());
    for (std::size_t i = 0; i < energies.size(); ++i)
        EXPECT_DOUBLE_EQ(energies[i], reference[i]);
}

TEST(VqaCluster, OverrideParamsResetsState)
{
    const auto fam = tfimFamily(3, 0.8, 1.2, 2);
    ClusterConfig ccfg;
    auto cluster = makeCluster(fam, ccfg);
    ShotLedger ledger;
    for (int i = 0; i < 3; ++i)
        cluster->step(ledger);
    std::vector<double> fresh(cluster->params().size(), 0.5);
    cluster->overrideParams(fresh);
    EXPECT_EQ(cluster->params(), fresh);
}

} // namespace
} // namespace treevqa

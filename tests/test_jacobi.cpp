/**
 * @file
 * Tests for the Jacobi symmetric eigensolver and the generalized
 * eigenproblem used by Hartree-Fock.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "linalg/jacobi.h"

namespace treevqa {
namespace {

TEST(Jacobi, TwoByTwoKnown)
{
    // Eigenvalues of [[2,1],[1,2]] are 1 and 3.
    Matrix a(2, 2);
    a(0, 0) = 2; a(0, 1) = 1; a(1, 0) = 1; a(1, 1) = 2;
    const EigenDecomposition ed = jacobiEigen(a);
    ASSERT_TRUE(ed.converged);
    EXPECT_NEAR(ed.values[0], 1.0, 1e-12);
    EXPECT_NEAR(ed.values[1], 3.0, 1e-12);
}

TEST(Jacobi, DiagonalMatrixSorted)
{
    Matrix a(3, 3);
    a(0, 0) = 5; a(1, 1) = -2; a(2, 2) = 1;
    const EigenDecomposition ed = jacobiEigen(a);
    EXPECT_NEAR(ed.values[0], -2.0, 1e-12);
    EXPECT_NEAR(ed.values[1], 1.0, 1e-12);
    EXPECT_NEAR(ed.values[2], 5.0, 1e-12);
}

TEST(Jacobi, ReconstructsRandomSymmetric)
{
    Rng rng(4);
    const std::size_t n = 8;
    Matrix a(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i; j < n; ++j)
            a(i, j) = a(j, i) = rng.normal();

    const EigenDecomposition ed = jacobiEigen(a);
    ASSERT_TRUE(ed.converged);

    // A =? V diag(w) V^T.
    Matrix d(n, n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        d(i, i) = ed.values[i];
    const Matrix rebuilt =
        ed.vectors.multiply(d).multiply(ed.vectors.transposed());
    EXPECT_LT(a.maxAbsDiff(rebuilt), 1e-9);
}

TEST(Jacobi, EigenvectorsOrthonormal)
{
    Rng rng(5);
    const std::size_t n = 6;
    Matrix a(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i; j < n; ++j)
            a(i, j) = a(j, i) = rng.uniform(-1.0, 1.0);

    const EigenDecomposition ed = jacobiEigen(a);
    const Matrix gram = ed.vectors.transposed().multiply(ed.vectors);
    EXPECT_LT(gram.maxAbsDiff(Matrix::identity(n)), 1e-9);
}

TEST(Jacobi, EigenvalueEquationHolds)
{
    Rng rng(6);
    const std::size_t n = 5;
    Matrix a(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i; j < n; ++j)
            a(i, j) = a(j, i) = rng.normal();
    const EigenDecomposition ed = jacobiEigen(a);
    for (std::size_t k = 0; k < n; ++k) {
        std::vector<double> v(n);
        for (std::size_t i = 0; i < n; ++i)
            v[i] = ed.vectors(i, k);
        const auto av = a.apply(v);
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_NEAR(av[i], ed.values[k] * v[i], 1e-9);
    }
}

TEST(GeneralizedEigen, ReducesToStandardWhenBIsIdentity)
{
    Rng rng(7);
    const std::size_t n = 4;
    Matrix a(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i; j < n; ++j)
            a(i, j) = a(j, i) = rng.normal();
    const EigenDecomposition standard = jacobiEigen(a);
    const EigenDecomposition general =
        generalizedEigen(a, Matrix::identity(n));
    for (std::size_t k = 0; k < n; ++k)
        EXPECT_NEAR(general.values[k], standard.values[k], 1e-9);
}

TEST(GeneralizedEigen, SatisfiesAxEqualsLambdaBx)
{
    // Overlap-like B: SPD with off-diagonal structure.
    Matrix a(2, 2), b(2, 2);
    a(0, 0) = -1.0; a(0, 1) = -0.5; a(1, 0) = -0.5; a(1, 1) = -1.5;
    b(0, 0) = 1.0;  b(0, 1) = 0.4;  b(1, 0) = 0.4;  b(1, 1) = 1.0;

    const EigenDecomposition ed = generalizedEigen(a, b);
    for (std::size_t k = 0; k < 2; ++k) {
        std::vector<double> x(2);
        for (std::size_t i = 0; i < 2; ++i)
            x[i] = ed.vectors(i, k);
        const auto ax = a.apply(x);
        const auto bx = b.apply(x);
        for (std::size_t i = 0; i < 2; ++i)
            EXPECT_NEAR(ax[i], ed.values[k] * bx[i], 1e-9);
    }
}

/** Size sweep: convergence and reconstruction across matrix orders. */
class JacobiSizeSweep : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(JacobiSizeSweep, ConvergesAndReconstructs)
{
    const std::size_t n = GetParam();
    Rng rng(100 + n);
    Matrix a(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i; j < n; ++j)
            a(i, j) = a(j, i) = rng.uniform(-2.0, 2.0);
    const EigenDecomposition ed = jacobiEigen(a);
    ASSERT_TRUE(ed.converged);
    // Trace preserved: sum of eigenvalues equals matrix trace.
    double trace = 0.0, eigsum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        trace += a(i, i);
        eigsum += ed.values[i];
    }
    EXPECT_NEAR(trace, eigsum, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, JacobiSizeSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 10u, 16u,
                                           24u));

} // namespace
} // namespace treevqa

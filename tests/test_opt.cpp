/**
 * @file
 * Tests for the classical optimizers (SPSA, COBYLA, Nelder-Mead).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "opt/cobyla.h"
#include "opt/nelder_mead.h"
#include "opt/spsa.h"

namespace treevqa {
namespace {

/** Convex quadratic centered at (1, -2, 3, ...). */
double
quadratic(const std::vector<double> &x)
{
    double s = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double target = (i % 2 == 0) ? 1.0 : -2.0;
        s += (x[i] - target) * (x[i] - target);
    }
    return s;
}

TEST(Spsa, GainSequencesFollowSpall)
{
    SpsaConfig cfg;
    cfg.a = 0.2;
    cfg.c = 0.15;
    cfg.bigA = 10.0;
    Spsa opt(cfg, 1);
    opt.reset({0.0});
    EXPECT_NEAR(opt.currentLearningRate(),
                0.2 / std::pow(11.0, 0.602), 1e-12);
    EXPECT_NEAR(opt.currentPerturbation(), 0.15, 1e-12);
}

TEST(Spsa, ConvergesOnQuadratic)
{
    SpsaConfig cfg;
    cfg.a = 0.4;
    Spsa opt(cfg, 42);
    opt.reset(std::vector<double>(6, 0.0));
    double loss = 0.0;
    for (int i = 0; i < 400; ++i)
        loss = opt.step(quadratic);
    EXPECT_LT(loss, 0.3);
    EXPECT_LT(quadratic(opt.params()), 0.3);
}

TEST(Spsa, ConvergesUnderNoise)
{
    Rng noise(3);
    const Objective f = [&](const std::vector<double> &x) {
        return quadratic(x) + noise.normal(0.0, 0.1);
    };
    SpsaConfig cfg;
    cfg.a = 0.4;
    Spsa opt(cfg, 7);
    opt.reset(std::vector<double>(4, 0.0));
    for (int i = 0; i < 600; ++i)
        opt.step(f);
    EXPECT_LT(quadratic(opt.params()), 0.5);
}

TEST(Spsa, TwoEvalsPerIteration)
{
    Spsa opt(SpsaConfig{}, 1);
    opt.reset({0.0, 0.0});
    int calls = 0;
    const Objective f = [&](const std::vector<double> &x) {
        ++calls;
        return quadratic(x);
    };
    opt.step(f);
    EXPECT_EQ(calls, 2);
    EXPECT_EQ(opt.lastStepEvals(), 2);
    EXPECT_EQ(opt.evalsPerIteration(), 2);
    EXPECT_EQ(opt.iteration(), 1);
}

TEST(Spsa, DeterministicForSameSeed)
{
    Spsa a(SpsaConfig{}, 99), b(SpsaConfig{}, 99);
    a.reset({0.5, 0.5});
    b.reset({0.5, 0.5});
    for (int i = 0; i < 10; ++i) {
        a.step(quadratic);
        b.step(quadratic);
    }
    EXPECT_EQ(a.params(), b.params());
}

TEST(Spsa, StepClipBoundsUpdate)
{
    SpsaConfig cfg;
    cfg.maxStepNorm = 0.01;
    Spsa opt(cfg, 5);
    const std::vector<double> x0(8, 0.0);
    opt.reset(x0);
    // A steep objective would otherwise produce a huge step.
    const Objective steep = [](const std::vector<double> &x) {
        double s = 0.0;
        for (double xi : x)
            s += 1000.0 * xi;
        return s;
    };
    opt.step(steep);
    double norm = 0.0;
    for (std::size_t i = 0; i < x0.size(); ++i)
        norm += (opt.params()[i] - x0[i]) * (opt.params()[i] - x0[i]);
    EXPECT_LE(std::sqrt(norm), 0.01 + 1e-12);
}

TEST(Spsa, CloneConfigPreservesSettings)
{
    SpsaConfig cfg;
    cfg.a = 0.77;
    Spsa opt(cfg, 1);
    auto clone = opt.cloneConfig();
    EXPECT_EQ(clone->name(), "SPSA");
    auto *typed = dynamic_cast<Spsa *>(clone.get());
    ASSERT_NE(typed, nullptr);
    EXPECT_DOUBLE_EQ(typed->config().a, 0.77);
}

TEST(Cobyla, ConvergesOnQuadratic)
{
    Cobyla opt;
    opt.reset(std::vector<double>(5, 0.0));
    for (int i = 0; i < 300; ++i)
        opt.step(quadratic);
    EXPECT_LT(quadratic(opt.params()), 0.05);
}

TEST(Cobyla, FirstStepBuildsSimplex)
{
    Cobyla opt;
    opt.reset({0.0, 0.0, 0.0});
    int calls = 0;
    const Objective f = [&](const std::vector<double> &x) {
        ++calls;
        return quadratic(x);
    };
    opt.step(f);
    EXPECT_EQ(calls, 4); // n + 1 evaluations
    calls = 0;
    opt.step(f);
    EXPECT_LE(calls, 2); // steady state: ~1 evaluation
}

TEST(Cobyla, RhoShrinksOnFailure)
{
    // A flat objective gives no improvement: rho must shrink.
    Cobyla opt;
    opt.reset({0.0, 0.0});
    const Objective flat = [](const std::vector<double> &) {
        return 1.0;
    };
    const double rho0 = opt.rho();
    for (int i = 0; i < 20; ++i)
        opt.step(flat);
    EXPECT_LT(opt.rho(), rho0);
}

TEST(Cobyla, ConvergedFlagAtRhoEnd)
{
    CobylaConfig cfg;
    cfg.rhoBegin = 0.1;
    cfg.rhoEnd = 0.05;
    Cobyla opt(cfg);
    opt.reset({0.0});
    const Objective flat = [](const std::vector<double> &) {
        return 1.0;
    };
    for (int i = 0; i < 50 && !opt.converged(); ++i)
        opt.step(flat);
    EXPECT_TRUE(opt.converged());
}

TEST(Cobyla, HandlesAnisotropicValley)
{
    // Elongated quadratic: (10 x0)^2 + x1^2.
    const Objective valley = [](const std::vector<double> &x) {
        return 100.0 * x[0] * x[0] + x[1] * x[1];
    };
    Cobyla opt;
    opt.reset({0.5, 2.0});
    double best = valley({0.5, 2.0});
    for (int i = 0; i < 300; ++i)
        best = std::min(best, opt.step(valley));
    EXPECT_LT(best, 0.2);
}

TEST(NelderMead, ConvergesOnQuadratic)
{
    NelderMead opt;
    opt.reset(std::vector<double>(4, 0.0));
    double loss = 1e9;
    for (int i = 0; i < 400; ++i)
        loss = opt.step(quadratic);
    EXPECT_LT(loss, 1e-3);
}

TEST(NelderMead, ConvergesOnRosenbrockLike)
{
    const Objective rosen = [](const std::vector<double> &x) {
        const double a = 1.0 - x[0];
        const double b = x[1] - x[0] * x[0];
        return a * a + 20.0 * b * b;
    };
    NelderMead opt;
    opt.reset({-0.5, 0.5});
    double loss = 1e9;
    for (int i = 0; i < 800; ++i)
        loss = opt.step(rosen);
    EXPECT_LT(loss, 1e-2);
}

TEST(NelderMead, SimplexSpreadShrinks)
{
    NelderMead opt;
    opt.reset({3.0, 3.0});
    opt.step(quadratic); // build
    const double spread0 = opt.simplexSpread();
    for (int i = 0; i < 100; ++i)
        opt.step(quadratic);
    EXPECT_LT(opt.simplexSpread(), spread0);
}

TEST(Optimizers, CloneConfigGivesIndependentInstances)
{
    Cobyla opt;
    auto c1 = opt.cloneConfig();
    auto c2 = opt.cloneConfig();
    c1->reset({0.0});
    c2->reset({5.0});
    EXPECT_NE(c1->params()[0], c2->params()[0]);
}

/** Dimension sweep: SPSA cost per iteration is dimension-independent
 * (always 2 evaluations) while still making progress. */
class SpsaDimensionSweep : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(SpsaDimensionSweep, TwoEvalsRegardlessOfDimension)
{
    const std::size_t dim = GetParam();
    Spsa opt(SpsaConfig{}, 11);
    opt.reset(std::vector<double>(dim, 0.0));
    int calls = 0;
    const Objective f = [&](const std::vector<double> &x) {
        ++calls;
        return quadratic(x);
    };
    opt.step(f);
    EXPECT_EQ(calls, 2);
}

INSTANTIATE_TEST_SUITE_P(Dims, SpsaDimensionSweep,
                         ::testing::Values(1u, 4u, 16u, 64u, 256u));

} // namespace
} // namespace treevqa

/**
 * @file
 * Tests for task similarity (Section 5.2.4) and spectral clustering
 * (Section 5.2.5).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "cluster/similarity.h"
#include "cluster/spectral.h"
#include "ham/spin_chains.h"
#include "ham/synthetic_molecule.h"

namespace treevqa {
namespace {

TEST(Similarity, DistanceMatrixSymmetricZeroDiagonal)
{
    const auto fam = tfimFamily(4, 0.5, 1.5, 5);
    const Matrix d = distanceMatrix(fam);
    ASSERT_EQ(d.rows(), 5u);
    for (std::size_t i = 0; i < 5; ++i) {
        EXPECT_DOUBLE_EQ(d(i, i), 0.0);
        for (std::size_t j = 0; j < 5; ++j)
            EXPECT_DOUBLE_EQ(d(i, j), d(j, i));
    }
}

TEST(Similarity, MedianHeuristic)
{
    Matrix d(3, 3, 0.0);
    d(0, 1) = d(1, 0) = 1.0;
    d(0, 2) = d(2, 0) = 2.0;
    d(1, 2) = d(2, 1) = 3.0;
    EXPECT_DOUBLE_EQ(medianPairwiseDistance(d), 2.0);
    // All-zero distances: fallback sigma.
    const Matrix z(3, 3, 0.0);
    EXPECT_DOUBLE_EQ(medianPairwiseDistance(z), 1.0);
}

TEST(Similarity, RbfKernelRangeAndDiagonal)
{
    const auto fam = xxzFamily(4, 0.2, 1.8, 6);
    const Matrix s = similarityMatrix(fam);
    for (std::size_t i = 0; i < 6; ++i) {
        EXPECT_DOUBLE_EQ(s(i, i), 1.0);
        for (std::size_t j = 0; j < 6; ++j) {
            EXPECT_GT(s(i, j), 0.0);
            EXPECT_LE(s(i, j), 1.0);
        }
    }
}

TEST(Similarity, NeighborsMoreSimilarThanExtremes)
{
    const auto spec = syntheticLiH();
    const auto fam = syntheticFamily(spec, familyBonds(spec, 8));
    const Matrix s = similarityMatrix(fam);
    EXPECT_GT(s(0, 1), s(0, 7));
    EXPECT_GT(s(3, 4), s(0, 7));
}

TEST(Similarity, SubmatrixSelectsBlock)
{
    Matrix m(4, 4, 0.0);
    for (std::size_t i = 0; i < 4; ++i)
        for (std::size_t j = 0; j < 4; ++j)
            m(i, j) = static_cast<double>(10 * i + j);
    const Matrix sub = submatrix(m, {1, 3});
    EXPECT_DOUBLE_EQ(sub(0, 0), 11.0);
    EXPECT_DOUBLE_EQ(sub(0, 1), 13.0);
    EXPECT_DOUBLE_EQ(sub(1, 0), 31.0);
}

TEST(Spectral, SeparatesTwoBlocks)
{
    // Block-diagonal similarity: {0,1,2} vs {3,4,5}.
    const std::size_t n = 6;
    Matrix s(n, n, 0.02);
    for (std::size_t i = 0; i < n; ++i)
        s(i, i) = 1.0;
    for (std::size_t i = 0; i < 3; ++i)
        for (std::size_t j = 0; j < 3; ++j)
            if (i != j) {
                s(i, j) = 0.9;
                s(i + 3, j + 3) = 0.9;
            }
    Rng rng(1);
    const SpectralResult res = spectralCluster(s, 2, rng);
    EXPECT_EQ(res.assignment[0], res.assignment[1]);
    EXPECT_EQ(res.assignment[1], res.assignment[2]);
    EXPECT_EQ(res.assignment[3], res.assignment[4]);
    EXPECT_EQ(res.assignment[4], res.assignment[5]);
    EXPECT_NE(res.assignment[0], res.assignment[3]);
}

TEST(Spectral, LaplacianSpectrumDiagnostics)
{
    Matrix s(4, 4, 0.01);
    for (std::size_t i = 0; i < 4; ++i)
        s(i, i) = 1.0;
    s(0, 1) = s(1, 0) = 0.95;
    s(2, 3) = s(3, 2) = 0.95;
    Rng rng(2);
    const SpectralResult res = spectralCluster(s, 2, rng);
    ASSERT_EQ(res.laplacianEigenvalues.size(), 4u);
    // Two near-zero eigenvalues for two connected blocks.
    EXPECT_LT(res.laplacianEigenvalues[0], 0.1);
    EXPECT_LT(res.laplacianEigenvalues[1], 0.2);
    EXPECT_GT(res.laplacianEigenvalues[2], 0.5);
}

TEST(Spectral, TinyInputsHandled)
{
    Matrix s(2, 2, 1.0);
    Rng rng(3);
    const SpectralResult res = spectralCluster(s, 2, rng);
    ASSERT_EQ(res.assignment.size(), 2u);
    EXPECT_NE(res.assignment[0], res.assignment[1]);
}

TEST(Spectral, ChainFamilySplitsContiguously)
{
    // A smooth 1-D family should split into two contiguous halves.
    const auto spec = syntheticHF();
    const auto fam = syntheticFamily(spec, familyBonds(spec, 8));
    const Matrix s = similarityMatrix(fam);
    Rng rng(4);
    const SpectralResult res = spectralCluster(s, 2, rng);
    // Contiguity: the assignment sequence changes label exactly once.
    int changes = 0;
    for (std::size_t i = 1; i < 8; ++i)
        changes += res.assignment[i] != res.assignment[i - 1];
    EXPECT_EQ(changes, 1);
}

/** k sweep on a three-block similarity structure. */
class SpectralKSweep : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(SpectralKSweep, NonEmptyClusters)
{
    const std::size_t k = GetParam();
    const std::size_t n = 9;
    Matrix s(n, n, 0.05);
    for (std::size_t i = 0; i < n; ++i)
        s(i, i) = 1.0;
    for (std::size_t blk = 0; blk < 3; ++blk)
        for (std::size_t i = 0; i < 3; ++i)
            for (std::size_t j = 0; j < 3; ++j)
                if (i != j)
                    s(3 * blk + i, 3 * blk + j) = 0.9;
    Rng rng(5);
    const SpectralResult res = spectralCluster(s, k, rng);
    std::vector<int> counts(k, 0);
    for (int a : res.assignment)
        ++counts[a];
    for (std::size_t c = 0; c < k; ++c)
        EXPECT_GT(counts[c], 0) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Ks, SpectralKSweep,
                         ::testing::Values(2u, 3u));

} // namespace
} // namespace treevqa

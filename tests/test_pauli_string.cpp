/**
 * @file
 * Tests for the symplectic Pauli string representation, including an
 * exhaustive verification of the multiplication phase table against
 * dense 2x2 matrices.
 */

#include <gtest/gtest.h>

#include <array>
#include <complex>

#include "pauli/pauli_string.h"

namespace treevqa {
namespace {

using Mat2 = std::array<Complex, 4>;

Mat2
pauliMatrix(char op)
{
    switch (op) {
      case 'I':
        return {Complex(1, 0), Complex(0, 0), Complex(0, 0),
                Complex(1, 0)};
      case 'X':
        return {Complex(0, 0), Complex(1, 0), Complex(1, 0),
                Complex(0, 0)};
      case 'Y':
        return {Complex(0, 0), Complex(0, -1), Complex(0, 1),
                Complex(0, 0)};
      default: // 'Z'
        return {Complex(1, 0), Complex(0, 0), Complex(0, 0),
                Complex(-1, 0)};
    }
}

Mat2
matMul(const Mat2 &a, const Mat2 &b)
{
    return {a[0] * b[0] + a[1] * b[2], a[0] * b[1] + a[1] * b[3],
            a[2] * b[0] + a[3] * b[2], a[2] * b[1] + a[3] * b[3]};
}

TEST(PauliString, LabelRoundTrip)
{
    const PauliString p = PauliString::fromLabel("XIZY");
    EXPECT_EQ(p.numQubits(), 4);
    EXPECT_EQ(p.opAt(0), 'X');
    EXPECT_EQ(p.opAt(1), 'I');
    EXPECT_EQ(p.opAt(2), 'Z');
    EXPECT_EQ(p.opAt(3), 'Y');
    EXPECT_EQ(p.toLabel(), "XIZY");
}

TEST(PauliString, InvalidLabelThrows)
{
    EXPECT_THROW(PauliString::fromLabel("XQ"), std::invalid_argument);
}

TEST(PauliString, WeightAndYCount)
{
    const PauliString p = PauliString::fromLabel("XYZIY");
    EXPECT_EQ(p.weight(), 4);
    EXPECT_EQ(p.yCount(), 2);
    EXPECT_FALSE(p.isIdentity());
    EXPECT_FALSE(p.isDiagonal());
    EXPECT_TRUE(PauliString(3).isIdentity());
    EXPECT_TRUE(PauliString::fromLabel("ZIZ").isDiagonal());
}

TEST(PauliString, SetOpOverwrites)
{
    PauliString p(3);
    p.setOp(1, 'Y');
    EXPECT_EQ(p.toLabel(), "IYI");
    p.setOp(1, 'Z');
    EXPECT_EQ(p.toLabel(), "IZI");
    p.setOp(1, 'I');
    EXPECT_TRUE(p.isIdentity());
}

TEST(PauliString, CommutationSingleQubit)
{
    const PauliString x = PauliString::fromLabel("X");
    const PauliString y = PauliString::fromLabel("Y");
    const PauliString z = PauliString::fromLabel("Z");
    const PauliString i = PauliString::fromLabel("I");
    EXPECT_FALSE(x.commutesWith(y));
    EXPECT_FALSE(y.commutesWith(z));
    EXPECT_FALSE(x.commutesWith(z));
    EXPECT_TRUE(x.commutesWith(x));
    EXPECT_TRUE(x.commutesWith(i));
    EXPECT_TRUE(z.commutesWith(i));
}

TEST(PauliString, CommutationMultiQubit)
{
    // Two anticommuting positions -> overall commute.
    const PauliString a = PauliString::fromLabel("XX");
    const PauliString b = PauliString::fromLabel("ZZ");
    EXPECT_TRUE(a.commutesWith(b));
    // One anticommuting position -> anticommute.
    const PauliString c = PauliString::fromLabel("XI");
    EXPECT_FALSE(c.commutesWith(b));
}

TEST(PauliString, QubitWiseCommutation)
{
    const PauliString a = PauliString::fromLabel("XIZ");
    EXPECT_TRUE(a.qubitWiseCommutesWith(PauliString::fromLabel("XZZ")));
    EXPECT_TRUE(a.qubitWiseCommutesWith(PauliString::fromLabel("IIZ")));
    EXPECT_FALSE(a.qubitWiseCommutesWith(PauliString::fromLabel("ZIZ")));
    // QWC implies full commutation.
    const PauliString b = PauliString::fromLabel("XZZ");
    EXPECT_TRUE(a.commutesWith(b));
}

TEST(PauliString, OrderingAndHash)
{
    const PauliString a = PauliString::fromLabel("XI");
    const PauliString b = PauliString::fromLabel("IX");
    EXPECT_TRUE(a < b || b < a);
    EXPECT_NE(a.hash(), b.hash());
    EXPECT_EQ(a.hash(), PauliString::fromLabel("XI").hash());
}

TEST(PauliMultiply, KnownSingleQubitProducts)
{
    const auto x = PauliString::fromLabel("X");
    const auto y = PauliString::fromLabel("Y");
    const auto z = PauliString::fromLabel("Z");

    // XY = iZ.
    PauliProduct p = multiply(x, y);
    EXPECT_EQ(p.string.toLabel(), "Z");
    EXPECT_NEAR(std::abs(p.phase - Complex(0, 1)), 0.0, 1e-15);
    // YX = -iZ.
    p = multiply(y, x);
    EXPECT_NEAR(std::abs(p.phase - Complex(0, -1)), 0.0, 1e-15);
    // ZX = iY.
    p = multiply(z, x);
    EXPECT_EQ(p.string.toLabel(), "Y");
    EXPECT_NEAR(std::abs(p.phase - Complex(0, 1)), 0.0, 1e-15);
    // XX = I.
    p = multiply(x, x);
    EXPECT_TRUE(p.string.isIdentity());
    EXPECT_NEAR(std::abs(p.phase - Complex(1, 0)), 0.0, 1e-15);
}

/**
 * Exhaustive property: for every pair of single-qubit Paulis, the
 * symplectic product (phase and operator) matches dense 2x2 matrix
 * multiplication.
 */
class PauliPairSweep
    : public ::testing::TestWithParam<std::pair<char, char>>
{
};

TEST_P(PauliPairSweep, MatchesDenseMatrices)
{
    const auto [ca, cb] = GetParam();
    const PauliString a = PauliString::fromLabel(std::string(1, ca));
    const PauliString b = PauliString::fromLabel(std::string(1, cb));
    const PauliProduct prod = multiply(a, b);

    const Mat2 dense = matMul(pauliMatrix(ca), pauliMatrix(cb));
    const Mat2 expected = pauliMatrix(prod.string.opAt(0));
    for (int e = 0; e < 4; ++e)
        EXPECT_NEAR(std::abs(dense[e] - prod.phase * expected[e]), 0.0,
                    1e-14)
            << ca << " * " << cb;
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, PauliPairSweep,
    ::testing::Values(
        std::pair{'I', 'I'}, std::pair{'I', 'X'}, std::pair{'I', 'Y'},
        std::pair{'I', 'Z'}, std::pair{'X', 'I'}, std::pair{'X', 'X'},
        std::pair{'X', 'Y'}, std::pair{'X', 'Z'}, std::pair{'Y', 'I'},
        std::pair{'Y', 'X'}, std::pair{'Y', 'Y'}, std::pair{'Y', 'Z'},
        std::pair{'Z', 'I'}, std::pair{'Z', 'X'}, std::pair{'Z', 'Y'},
        std::pair{'Z', 'Z'}));

TEST(PauliMultiply, MultiQubitProductFactorizes)
{
    // (X(x)Y) * (Y(x)Y) = (XY)(x)(YY) = (iZ)(x)(I) = i Z(x)I.
    const auto a = PauliString::fromLabel("XY");
    const auto b = PauliString::fromLabel("YY");
    const PauliProduct p = multiply(a, b);
    EXPECT_EQ(p.string.toLabel(), "ZI");
    EXPECT_NEAR(std::abs(p.phase - Complex(0, 1)), 0.0, 1e-15);
}

TEST(PauliMultiply, ProductPhaseConsistentWithCommutation)
{
    // For anticommuting P, Q: PQ = -QP; phases must be negatives.
    const auto p = PauliString::fromLabel("XZY");
    const auto q = PauliString::fromLabel("ZZX");
    const PauliProduct pq = multiply(p, q);
    const PauliProduct qp = multiply(q, p);
    EXPECT_EQ(pq.string, qp.string);
    if (p.commutesWith(q))
        EXPECT_NEAR(std::abs(pq.phase - qp.phase), 0.0, 1e-15);
    else
        EXPECT_NEAR(std::abs(pq.phase + qp.phase), 0.0, 1e-15);
}

} // namespace
} // namespace treevqa

/**
 * @file
 * Tests for the benchmark Hamiltonian generators: spin chains, MaxCut,
 * IEEE-14 load families, synthetic molecules (Table 1 shapes).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "ham/ieee14.h"
#include "ham/maxcut.h"
#include "ham/spin_chains.h"
#include "ham/synthetic_molecule.h"
#include "linalg/lanczos.h"

namespace treevqa {
namespace {

TEST(SpinChains, XxzTermStructure)
{
    const PauliSum h = xxzChain(5, 1.0, 0.5);
    // 4 bonds x 3 terms.
    EXPECT_EQ(h.numTerms(), 12u);
    EXPECT_NEAR(h.coefficientOf(PauliString::fromLabel("XXIII")), 1.0,
                1e-14);
    EXPECT_NEAR(h.coefficientOf(PauliString::fromLabel("ZZIII")), 0.5,
                1e-14);
}

TEST(SpinChains, TfimTermStructure)
{
    const PauliSum h = transverseFieldIsing(4, 1.0, 0.8);
    EXPECT_EQ(h.numTerms(), 3u + 4u);
    EXPECT_NEAR(h.coefficientOf(PauliString::fromLabel("ZZII")), -1.0,
                1e-14);
    EXPECT_NEAR(h.coefficientOf(PauliString::fromLabel("XIII")), -0.8,
                1e-14);
}

TEST(SpinChains, FamiliesSweepParameter)
{
    const auto fam = xxzFamily(4, 0.5, 1.5, 5);
    ASSERT_EQ(fam.size(), 5u);
    EXPECT_NEAR(fam[0].coefficientOf(PauliString::fromLabel("ZZII")),
                0.5, 1e-12);
    EXPECT_NEAR(fam[4].coefficientOf(PauliString::fromLabel("ZZII")),
                1.5, 1e-12);
    // Neighbors closer than extremes (the similarity premise).
    EXPECT_LT(l1Distance(fam[0], fam[1]), l1Distance(fam[0], fam[4]));
}

TEST(SpinChains, TfimGroundStateLimits)
{
    // h = 0: classical ferromagnet, E0 = -(n-1) J.
    Rng rng(1);
    const PauliSum h0 = transverseFieldIsing(4, 1.0, 0.0);
    const MatVec mv0 = [&](const CVector &x, CVector &y) {
        h0.applyTo(x, y);
    };
    EXPECT_NEAR(lanczosGroundState(16, mv0, rng).eigenvalue, -3.0,
                1e-8);
    // h >> J: field-dominated, E0 ~ -n h.
    const PauliSum hbig = transverseFieldIsing(4, 1.0, 50.0);
    const MatVec mvb = [&](const CVector &x, CVector &y) {
        hbig.applyTo(x, y);
    };
    EXPECT_NEAR(lanczosGroundState(16, mvb, rng).eigenvalue, -200.0,
                0.2);
}

TEST(MaxCut, CutValueByHand)
{
    WeightedGraph g;
    g.numNodes = 3;
    g.edges = {{0, 1, 1.0}, {1, 2, 2.0}, {0, 2, 3.0}};
    // Partition {0} vs {1,2}: cut = 1 + 3 = 4.
    EXPECT_DOUBLE_EQ(g.cutValue(0b001), 4.0);
    // Partition {1} vs {0,2}: cut = 1 + 2 = 3.
    EXPECT_DOUBLE_EQ(g.cutValue(0b010), 3.0);
    EXPECT_DOUBLE_EQ(g.maxCutBruteForce(), 5.0); // {2} vs {0,1}
}

TEST(MaxCut, HamiltonianGroundEnergyIsMinusMaxCut)
{
    WeightedGraph g;
    g.numNodes = 4;
    g.edges = {{0, 1, 1.0}, {1, 2, 1.5}, {2, 3, 0.5}, {0, 3, 2.0},
               {0, 2, 1.0}};
    const PauliSum h = maxcutHamiltonian(g);
    Rng rng(2);
    const MatVec mv = [&](const CVector &x, CVector &y) {
        h.applyTo(x, y);
    };
    const double e0 = lanczosGroundState(16, mv, rng).eigenvalue;
    EXPECT_NEAR(e0, -g.maxCutBruteForce(), 1e-8);
}

TEST(MaxCut, ClausesMirrorEdges)
{
    WeightedGraph g;
    g.numNodes = 3;
    g.edges = {{0, 1, 1.25}, {1, 2, 0.5}};
    const auto clauses = maxcutClauses(g);
    ASSERT_EQ(clauses.size(), 2u);
    EXPECT_EQ(clauses[0].u, 0);
    EXPECT_EQ(clauses[0].v, 1);
    EXPECT_DOUBLE_EQ(clauses[0].weight, 1.25);
}

TEST(MaxCut, EdgeWeightVarianceZeroForIdenticalGraphs)
{
    const WeightedGraph g = ieee14BaseGraph();
    EXPECT_NEAR(edgeWeightVariance({g, g, g}), 0.0, 1e-15);
}

TEST(Ieee14, CanonicalShape)
{
    const WeightedGraph g = ieee14BaseGraph();
    EXPECT_EQ(g.numNodes, 14);
    EXPECT_EQ(g.edges.size(), 20u);
    for (const auto &e : g.edges) {
        EXPECT_GE(e.u, 0);
        EXPECT_LT(e.v, 14);
        EXPECT_GT(e.weight, 0.0);
        EXPECT_LE(e.weight, 1.0);
    }
}

TEST(Ieee14, LoadFamilyVarianceOrdering)
{
    // Fig. 12 premise: wider load ranges produce higher edge variance.
    const auto tight = ieee14LoadFamily(0.9, 1.1, 10);
    const auto mid = ieee14LoadFamily(0.8, 1.2, 10);
    const auto wide = ieee14LoadFamily(0.5, 1.5, 10);
    const double v_tight = edgeWeightVariance(tight);
    const double v_mid = edgeWeightVariance(mid);
    const double v_wide = edgeWeightVariance(wide);
    EXPECT_LT(v_tight, v_mid);
    EXPECT_LT(v_mid, v_wide);
}

TEST(Ieee14, LoadScalingIsMonotonePerEdge)
{
    const auto fam = ieee14LoadFamily(0.5, 1.5, 3);
    for (std::size_t e = 0; e < fam[0].edges.size(); ++e) {
        EXPECT_LT(fam[0].edges[e].weight, fam[1].edges[e].weight);
        EXPECT_LT(fam[1].edges[e].weight, fam[2].edges[e].weight);
    }
}

TEST(SyntheticMolecule, Table1Shapes)
{
    struct Expected
    {
        SyntheticMoleculeSpec spec;
        int qubits;
        std::size_t terms;
    };
    const Expected expected[] = {
        {syntheticLiH(), 12, 496},
        {syntheticBeH2(), 14, 810},
        {syntheticHF(), 12, 631},
        {syntheticC2H2(), 28, 5945},
    };
    for (const auto &e : expected) {
        const PauliSum h =
            buildSyntheticMolecule(e.spec, e.spec.eqBondAngstrom);
        EXPECT_EQ(h.numQubits(), e.qubits) << e.spec.name;
        EXPECT_EQ(h.numTerms(), e.terms) << e.spec.name;
    }
}

TEST(SyntheticMolecule, DeterministicAcrossCalls)
{
    const auto spec = syntheticLiH();
    const PauliSum a = buildSyntheticMolecule(spec, 1.5);
    const PauliSum b = buildSyntheticMolecule(spec, 1.5);
    EXPECT_DOUBLE_EQ(l1Distance(a, b), 0.0);
}

TEST(SyntheticMolecule, SimilarityDecaysWithBondSeparation)
{
    // Fig. 4b/4c premise for the synthetic families.
    const auto spec = syntheticLiH();
    const auto bonds = familyBonds(spec, 6);
    const auto fam = syntheticFamily(spec, bonds);
    const AlignedTerms aligned = alignTerms(fam);
    for (std::size_t k = 2; k < fam.size(); ++k)
        EXPECT_LT(l1Distance(aligned, 0, 1), l1Distance(aligned, 0, k));
}

TEST(SyntheticMolecule, SharedTermStructureAcrossBonds)
{
    // Padding is minimal by construction: same strings, different
    // coefficients (Section 5.2.1).
    const auto spec = syntheticHF();
    const PauliSum a = buildSyntheticMolecule(spec, 0.9);
    const PauliSum b = buildSyntheticMolecule(spec, 1.05);
    const AlignedTerms aligned = alignTerms({a, b});
    EXPECT_EQ(aligned.strings.size(), a.numTerms());
}

TEST(SyntheticMolecule, IdentityTermNearBaseEnergy)
{
    const auto spec = syntheticBeH2();
    const PauliSum h =
        buildSyntheticMolecule(spec, spec.eqBondAngstrom);
    EXPECT_NEAR(h.normalizedTrace(), spec.baseEnergy,
                0.05 * std::fabs(spec.baseEnergy));
}

TEST(SyntheticMolecule, FamilyBondsEquallySpaced)
{
    const auto bonds = familyBonds(1.0, 2.0, 5);
    ASSERT_EQ(bonds.size(), 5u);
    EXPECT_DOUBLE_EQ(bonds[0], 1.0);
    EXPECT_DOUBLE_EQ(bonds[4], 2.0);
    EXPECT_NEAR(bonds[2] - bonds[1], bonds[1] - bonds[0], 1e-12);
}

TEST(SyntheticMolecule, HalfFillingBits)
{
    EXPECT_EQ(halfFillingBits(4), 0b0011u);
    EXPECT_EQ(halfFillingBits(12), 0b111111u);
}

} // namespace
} // namespace treevqa

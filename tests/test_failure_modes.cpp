/**
 * @file
 * Failure-injection and edge-case tests: degenerate inputs, zero
 * budgets, single-task applications, identical Hamiltonians — the
 * paths a downstream user will hit first when misusing the API.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/hardware_efficient.h"
#include "cluster/similarity.h"
#include "cluster/spectral.h"
#include "core/baseline.h"
#include "core/tree_controller.h"
#include "ham/spin_chains.h"
#include "opt/spsa.h"

namespace treevqa {
namespace {

TEST(FailureModes, ZeroShotBudgetStopsImmediately)
{
    auto tasks = makeTasks("t", tfimFamily(3, 0.8, 1.2, 3), 0);
    solveGroundEnergies(tasks);
    const Ansatz ansatz = makeHardwareEfficientAnsatz(3, 1, 0);
    Spsa proto(SpsaConfig{}, 1);

    TreeVqaConfig cfg;
    cfg.shotBudget = 0;
    cfg.maxRounds = 1000;
    TreeController controller(tasks, ansatz, proto, cfg);
    const TreeVqaResult res = controller.run();
    EXPECT_EQ(res.rounds, 0);
    // Post-processing still yields a valid energy for every task
    // (the zero-parameter state).
    for (const auto &o : res.outcomes)
        EXPECT_TRUE(std::isfinite(o.bestEnergy));
}

TEST(FailureModes, SingleTaskApplicationNeverSplits)
{
    auto tasks = makeTasks("t", tfimFamily(3, 1.0, 1.0, 1), 0);
    solveGroundEnergies(tasks);
    const Ansatz ansatz = makeHardwareEfficientAnsatz(3, 1, 0);
    Spsa proto(SpsaConfig{}, 2);

    TreeVqaConfig cfg;
    cfg.shotBudget = 1ull << 62;
    cfg.maxRounds = 150;
    // Aggressive triggers: a lone task must re-arm, not split.
    cfg.cluster.warmupIterations = 5;
    cfg.cluster.epsSplit = 0.5;
    TreeController controller(tasks, ansatz, proto, cfg);
    const TreeVqaResult res = controller.run();
    EXPECT_EQ(res.splitCount, 0);
    EXPECT_EQ(res.finalClusterCount, 1u);
    EXPECT_EQ(res.maxTreeLevel, 1);
}

TEST(FailureModes, IdenticalTasksSplitSafely)
{
    // All-zero pairwise distances: median heuristic falls back, the
    // spectral split still bisects, nothing divides by zero.
    const PauliSum h = transverseFieldIsing(3, 1.0, 1.0);
    auto tasks = makeTasks("same", {h, h, h, h}, 0);
    solveGroundEnergies(tasks);
    const Ansatz ansatz = makeHardwareEfficientAnsatz(3, 1, 0);
    Spsa proto(SpsaConfig{}, 3);

    TreeVqaConfig cfg;
    cfg.shotBudget = 1ull << 62;
    cfg.maxRounds = 250;
    cfg.cluster.warmupIterations = 10;
    cfg.cluster.windowSize = 8;
    cfg.cluster.epsSplit = 0.3; // force early splits
    TreeController controller(tasks, ansatz, proto, cfg);
    const TreeVqaResult res = controller.run();
    for (const auto &o : res.outcomes)
        EXPECT_TRUE(std::isfinite(o.bestEnergy));
}

TEST(FailureModes, BaselineZeroBudget)
{
    auto tasks = makeTasks("t", tfimFamily(3, 0.8, 1.2, 2), 0);
    const Ansatz ansatz = makeHardwareEfficientAnsatz(3, 1, 0);
    Spsa proto(SpsaConfig{}, 4);
    BaselineConfig cfg;
    cfg.shotBudget = 0;
    const BaselineResult res =
        runBaseline(tasks, ansatz, proto, cfg);
    EXPECT_EQ(res.outcomes.size(), 2u);
    for (const auto &o : res.outcomes)
        EXPECT_TRUE(std::isfinite(o.bestEnergy));
}

TEST(FailureModes, MedianDistanceFallbackOnIdenticalInputs)
{
    const PauliSum h = transverseFieldIsing(3, 1.0, 0.5);
    const Matrix d = distanceMatrix({h, h, h});
    EXPECT_DOUBLE_EQ(medianPairwiseDistance(d), 1.0); // fallback
    const Matrix s = rbfKernel(d);
    for (std::size_t i = 0; i < 3; ++i)
        for (std::size_t j = 0; j < 3; ++j)
            EXPECT_DOUBLE_EQ(s(i, j), 1.0);
}

TEST(FailureModes, SpectralClusterMorePartitionsThanPoints)
{
    Matrix s(2, 2, 1.0);
    Rng rng(5);
    const SpectralResult res = spectralCluster(s, 4, rng);
    EXPECT_EQ(res.assignment.size(), 2u);
}

TEST(FailureModes, SolveGroundEnergiesIsIdempotent)
{
    auto tasks = makeTasks("t", tfimFamily(3, 0.8, 1.2, 2), 0);
    solveGroundEnergies(tasks);
    const double first = tasks[0].groundEnergy;
    tasks[0].groundEnergy = -123.0; // pretend externally supplied
    solveGroundEnergies(tasks);     // must not overwrite
    EXPECT_DOUBLE_EQ(tasks[0].groundEnergy, -123.0);
    EXPECT_NE(first, -123.0);
}

TEST(FailureModes, FidelityWithTinyGroundEnergy)
{
    // Near-zero ground energies must not divide by zero.
    const double f = energyFidelity(0.5, 1e-308);
    EXPECT_TRUE(std::isfinite(f));
}

TEST(FailureModes, EmptyTraceReadouts)
{
    std::vector<VqaTask> tasks(1);
    tasks[0].groundEnergy = -1.0;
    EXPECT_EQ(shotsToReachFidelity({}, tasks, 0.5), 0u);
    EXPECT_DOUBLE_EQ(fidelityAtBudget({}, tasks, 100), 0.0);
    EXPECT_DOUBLE_EQ(maxFidelity({}, tasks), 0.0);
}

TEST(FailureModes, ControllerWithMaxRoundsZeroUnlimitedGuard)
{
    // maxRounds <= 0 means "budget-only"; a small budget must still
    // terminate the run.
    auto tasks = makeTasks("t", tfimFamily(3, 0.9, 1.1, 2), 0);
    const Ansatz ansatz = makeHardwareEfficientAnsatz(3, 1, 0);
    Spsa proto(SpsaConfig{}, 6);
    TreeVqaConfig cfg;
    cfg.shotBudget = 1'000'000;
    cfg.maxRounds = 0;
    TreeController controller(tasks, ansatz, proto, cfg);
    const TreeVqaResult res = controller.run();
    EXPECT_GE(res.totalShots, cfg.shotBudget);
    EXPECT_GT(res.rounds, 0);
}

TEST(FailureModes, ClusterConfigExtremeWindows)
{
    // Degenerate window sizes are clamped, never crash.
    auto tasks = makeTasks("t", tfimFamily(3, 0.8, 1.2, 3), 0);
    const Ansatz ansatz = makeHardwareEfficientAnsatz(3, 1, 0);
    Spsa proto(SpsaConfig{}, 7);
    TreeVqaConfig cfg;
    cfg.shotBudget = 1ull << 62;
    cfg.maxRounds = 60;
    cfg.cluster.windowSize = 0; // clamps to 2
    cfg.cluster.warmupIterations = 0;
    TreeController controller(tasks, ansatz, proto, cfg);
    const TreeVqaResult res = controller.run();
    EXPECT_EQ(res.outcomes.size(), 3u);
}

TEST(FailureModes, NoiseModelExtremeDamping)
{
    // A pathologically deep circuit: damping must stay in (0, 1].
    NoiseModel m(0.99, 0.99, "x");
    const double d =
        m.dampingFactor(PauliString::fromLabel("XYZXYZ"), 10000);
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 1.0);
}

} // namespace
} // namespace treevqa

/**
 * @file
 * Tests for statistics utilities, especially the sliding-window slope
 * used by the split monitor.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/statistics.h"

namespace treevqa {
namespace {

TEST(Stats, MeanVarianceBasics)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({2.0, 4.0, 6.0}), 4.0);
    EXPECT_DOUBLE_EQ(variance({5.0}), 0.0);
    EXPECT_DOUBLE_EQ(variance({1.0, 3.0}), 1.0);
    EXPECT_DOUBLE_EQ(stddev({1.0, 3.0}), 1.0);
}

TEST(Stats, MedianOddEven)
{
    EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
    EXPECT_DOUBLE_EQ(median({}), 0.0);
    EXPECT_DOUBLE_EQ(median({7.0}), 7.0);
}

TEST(Stats, SlopeOfExactLine)
{
    // y = 3 - 2x on x = 0..9.
    std::vector<double> ys;
    for (int i = 0; i < 10; ++i)
        ys.push_back(3.0 - 2.0 * i);
    EXPECT_NEAR(linearRegressionSlope(ys), -2.0, 1e-12);
}

TEST(Stats, SlopeOfConstantIsZero)
{
    EXPECT_DOUBLE_EQ(linearRegressionSlope({5.0, 5.0, 5.0, 5.0}), 0.0);
}

TEST(Stats, SlopeDegenerateInputs)
{
    EXPECT_DOUBLE_EQ(linearRegressionSlope({}), 0.0);
    EXPECT_DOUBLE_EQ(linearRegressionSlope({1.0}), 0.0);
}

TEST(Stats, SlopeWithExplicitAbscissae)
{
    const std::vector<double> xs = {0.0, 2.0, 4.0, 6.0};
    const std::vector<double> ys = {1.0, 2.0, 3.0, 4.0};
    EXPECT_NEAR(linearRegressionSlope(xs, ys), 0.5, 1e-12);
}

TEST(Stats, SlopeRobustToNoise)
{
    // Noisy descending line: recovered slope close to the truth.
    Rng rng(1);
    std::vector<double> ys;
    for (int i = 0; i < 200; ++i)
        ys.push_back(-0.5 * i + rng.normal(0.0, 0.3));
    EXPECT_NEAR(linearRegressionSlope(ys), -0.5, 0.02);
}

TEST(SlidingWindow, EvictsOldestAtCapacity)
{
    SlidingWindow w(3);
    w.push(1.0);
    w.push(2.0);
    w.push(3.0);
    EXPECT_TRUE(w.full());
    w.push(10.0);
    EXPECT_EQ(w.size(), 3u);
    EXPECT_DOUBLE_EQ(w.windowMean(), (2.0 + 3.0 + 10.0) / 3.0);
    EXPECT_DOUBLE_EQ(w.back(), 10.0);
}

TEST(SlidingWindow, SlopeTracksRecentTrend)
{
    SlidingWindow w(5);
    // Descending then flat: slope should go from negative to ~0.
    for (int i = 0; i < 5; ++i)
        w.push(-1.0 * i);
    EXPECT_NEAR(w.slope(), -1.0, 1e-12);
    for (int i = 0; i < 5; ++i)
        w.push(-4.0);
    EXPECT_NEAR(w.slope(), 0.0, 1e-12);
}

TEST(SlidingWindow, MinimumCapacityIsTwo)
{
    SlidingWindow w(0);
    EXPECT_EQ(w.capacity(), 2u);
}

TEST(SlidingWindow, ClearEmpties)
{
    SlidingWindow w(4);
    w.push(1.0);
    w.push(2.0);
    w.clear();
    EXPECT_EQ(w.size(), 0u);
    EXPECT_DOUBLE_EQ(w.slope(), 0.0);
}

TEST(RunningStats, MatchesBatchMoments)
{
    Rng rng(2);
    RunningStats rs;
    std::vector<double> xs;
    for (int i = 0; i < 5000; ++i) {
        const double x = rng.normal(2.0, 3.0);
        rs.push(x);
        xs.push_back(x);
    }
    EXPECT_EQ(rs.count(), xs.size());
    EXPECT_NEAR(rs.mean(), mean(xs), 1e-9);
    EXPECT_NEAR(rs.variance(), variance(xs), 1e-6);
    EXPECT_LE(rs.min(), rs.mean());
    EXPECT_GE(rs.max(), rs.mean());
}

/** Property sweep: slope of a synthetic line y = b + m x + noise is
 * recovered within tolerance for several slopes. */
class SlopeSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(SlopeSweep, RecoversKnownSlope)
{
    const double m = GetParam();
    Rng rng(17);
    std::vector<double> ys;
    for (int i = 0; i < 400; ++i)
        ys.push_back(1.5 + m * i + rng.normal(0.0, 0.05));
    EXPECT_NEAR(linearRegressionSlope(ys), m, 5e-3);
}

INSTANTIATE_TEST_SUITE_P(Slopes, SlopeSweep,
                         ::testing::Values(-2.0, -0.1, 0.0, 0.1, 2.0));

} // namespace
} // namespace treevqa

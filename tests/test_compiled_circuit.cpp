/**
 * @file
 * Tests for the compiled execution-plan layer: CompiledCircuit vs
 * eager gate-by-gate application for every gate type, the process-wide
 * CompilationCache, EvalPlan prefix-tree checkpointing on crafted
 * probe sets, sharded vs serial Pauli propagation, and SimBackend
 * selection by name.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "circuit/compiled_circuit.h"
#include "circuit/hardware_efficient.h"
#include "circuit/uccsd_min.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/config_io.h"
#include "core/objective.h"
#include "core/sim_backend.h"
#include "ham/spin_chains.h"
#include "sim/eval_plan.h"
#include "sim/expectation.h"
#include "sim/workspace_pool.h"

namespace treevqa {
namespace {

/** Sets the global pool to `threads` lanes for one test scope. */
class PoolSizeGuard
{
  public:
    explicit PoolSizeGuard(std::size_t threads)
    {
        ThreadPool::global().resize(threads);
    }
    ~PoolSizeGuard() { ThreadPool::global().resize(0); }
};

/** Unfused reference: one kernel call per source instruction. */
Statevector
eagerReference(const Circuit &c, const std::vector<double> &theta,
               std::uint64_t initial_bits = 0)
{
    Statevector ref(c.numQubits());
    ref.setBasisState(initial_bits);
    for (const auto &g : c.gates()) {
        const double angle = (g.paramIndex >= 0)
            ? g.scale * theta[g.paramIndex] + g.offset
            : g.offset;
        switch (g.op) {
          case GateOp::Rx: ref.applyRx(g.q0, angle); break;
          case GateOp::Ry: ref.applyRy(g.q0, angle); break;
          case GateOp::Rz: ref.applyRz(g.q0, angle); break;
          case GateOp::H: ref.applyH(g.q0); break;
          case GateOp::X: ref.applyX(g.q0); break;
          case GateOp::S: ref.applyS(g.q0); break;
          case GateOp::Sdg: ref.applySdg(g.q0); break;
          case GateOp::Cx: ref.applyCx(g.q0, g.q1); break;
          case GateOp::Cz: ref.applyCz(g.q0, g.q1); break;
          case GateOp::Rzz: ref.applyRzz(g.q0, g.q1, angle); break;
          case GateOp::Rxx: ref.applyRxx(g.q0, g.q1, angle); break;
          case GateOp::Ryy: ref.applyRyy(g.q0, g.q1, angle); break;
        }
    }
    return ref;
}

void
expectStatesNear(const Statevector &a, const Statevector &b, double tol)
{
    ASSERT_EQ(a.dim(), b.dim());
    for (std::size_t i = 0; i < a.dim(); ++i)
        EXPECT_NEAR(std::abs(a.amplitudes()[i] - b.amplitudes()[i]),
                    0.0, tol)
            << "amplitude " << i;
}

/** Compiled execution vs the eager unfused reference at 1e-12. */
void
checkCompiledMatchesEager(const Circuit &c,
                          const std::vector<double> &theta)
{
    const CompiledCircuit program(c);
    Statevector compiled(c.numQubits());
    program.execute(compiled, theta);
    const Statevector ref = eagerReference(c, theta);
    expectStatesNear(compiled, ref, 1e-12);
}

TEST(CompiledCircuit, EveryGateTypeMatchesEager)
{
    // One circuit per gate type, parameter-bound where supported, with
    // surrounding rotations so the fused run is non-trivial.
    struct Case
    {
        const char *name;
        std::function<void(Circuit &, int)> emit;
    };
    const std::vector<Case> cases = {
        {"rx", [](Circuit &c, int p) { c.rxParam(0, p, 1.3); }},
        {"ry", [](Circuit &c, int p) { c.ryParam(1, p, -0.7); }},
        {"rz", [](Circuit &c, int p) { c.rzParam(2, p, 2.1); }},
        {"h", [](Circuit &c, int) { c.h(0); }},
        {"x", [](Circuit &c, int) { c.x(1); }},
        {"s", [](Circuit &c, int) { c.s(2); }},
        {"sdg", [](Circuit &c, int) { c.sdg(0); }},
        {"cx", [](Circuit &c, int) { c.cx(0, 2); }},
        {"cz", [](Circuit &c, int) { c.cz(1, 2); }},
        {"rzz", [](Circuit &c, int p) { c.rzzParam(0, 1, p, 0.9); }},
        {"rxx", [](Circuit &c, int p) { c.rxxParam(1, 2, p, 1.1); }},
        {"ryy", [](Circuit &c, int p) { c.ryyParam(0, 2, p, -1.4); }},
    };
    for (const Case &test_case : cases) {
        Circuit c(3);
        const int p = c.addParam();
        // Rotations before and after so fusion runs form around the
        // gate under test.
        for (int q = 0; q < 3; ++q) {
            c.ry(q, 0.3 + q);
            c.rz(q, -0.2 * (q + 1));
        }
        test_case.emit(c, p);
        for (int q = 0; q < 3; ++q)
            c.rx(q, 0.1 * (q + 1));
        checkCompiledMatchesEager(c, {0.83});
    }
}

TEST(CompiledCircuit, RandomMixedCircuitsMatchEager)
{
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        Rng rng(seed * 7919);
        const int n = 5;
        Circuit c(n);
        const int p0 = c.addParam();
        const int p1 = c.addParam();
        for (int g = 0; g < 150; ++g) {
            const int q = static_cast<int>(rng.uniformInt(n));
            const int r =
                static_cast<int>((q + 1 + rng.uniformInt(n - 1)) % n);
            switch (rng.uniformInt(14)) {
              case 0: c.rx(q, rng.uniform(-3, 3)); break;
              case 1: c.ry(q, rng.uniform(-3, 3)); break;
              case 2: c.rz(q, rng.uniform(-3, 3)); break;
              case 3: c.h(q); break;
              case 4: c.x(q); break;
              case 5: c.s(q); break;
              case 6: c.sdg(q); break;
              case 7: c.cx(q, r); break;
              case 8: c.cz(q, r); break;
              case 9: c.rzz(q, r, rng.uniform(-3, 3)); break;
              case 10: c.rxx(q, r, rng.uniform(-3, 3)); break;
              case 11: c.ryy(q, r, rng.uniform(-3, 3)); break;
              case 12: c.rxParam(q, p0, rng.uniform(-1, 1)); break;
              default: c.rzzParam(q, r, p1, rng.uniform(-1, 1)); break;
            }
        }
        checkCompiledMatchesEager(c, {0.41, -1.27});
    }
}

TEST(CompiledCircuit, FusionCompressesSingleQubitRuns)
{
    // A rotation layer plus entangler compiles to far fewer ops than
    // source gates, and every op reports the parameters it reads.
    const Ansatz ansatz = makeHardwareEfficientAnsatz(4, 2, 0);
    const CompiledCircuit &program = *ansatz.compiled();
    EXPECT_LT(program.numOps(), ansatz.circuit().numGates());

    std::size_t bound_reads = 0;
    for (std::size_t i = 0; i < program.numOps(); ++i)
        bound_reads += static_cast<std::size_t>(
            program.opParamsEnd(i) - program.opParamsBegin(i));
    // Every bound source gate appears exactly once across the ops.
    std::size_t bound_gates = 0;
    for (const auto &g : ansatz.circuit().gates())
        if (g.paramIndex >= 0)
            ++bound_gates;
    EXPECT_EQ(bound_reads, bound_gates);
}

TEST(CompiledCircuit, OpBindsEquallyComparesOnlyReadParams)
{
    Circuit c(2);
    const int p0 = c.addParam();
    const int p1 = c.addParam();
    c.ryParam(0, p0);
    c.cx(0, 1);
    c.rzParam(1, p1);
    const CompiledCircuit program(c);

    const std::vector<double> a{0.5, 1.0};
    const std::vector<double> b{0.5, 2.0}; // differs only in p1
    // Find the op reading p0: it must bind equally; the op reading p1
    // must not.
    bool saw_p0 = false, saw_p1 = false;
    for (std::size_t i = 0; i < program.numOps(); ++i) {
        const int *begin = program.opParamsBegin(i);
        const int *end = program.opParamsEnd(i);
        if (begin == end) {
            EXPECT_TRUE(program.opBindsEqually(i, a, b));
            continue;
        }
        if (*begin == p0) {
            saw_p0 = true;
            EXPECT_TRUE(program.opBindsEqually(i, a, b));
        } else if (*begin == p1) {
            saw_p1 = true;
            EXPECT_FALSE(program.opBindsEqually(i, a, b));
        }
    }
    EXPECT_TRUE(saw_p0);
    EXPECT_TRUE(saw_p1);
}

TEST(CompilationCache, SameCircuitSharesOneProgram)
{
    const Ansatz a = makeHardwareEfficientAnsatz(5, 2, 0b00101);
    const Ansatz b = makeHardwareEfficientAnsatz(5, 2, 0b11010);
    // Same circuit shape, different initial bits: one shared program.
    ASSERT_TRUE(a.compiled());
    EXPECT_EQ(a.compiled().get(), b.compiled().get());

    // Re-binding initial bits shares the program too.
    const Ansatz c = a.withInitialBits(0b111);
    EXPECT_EQ(c.compiled().get(), a.compiled().get());

    // A different shape compiles separately.
    const Ansatz d = makeHardwareEfficientAnsatz(5, 3, 0);
    EXPECT_NE(d.compiled().get(), a.compiled().get());
}

/** Capture every leaf state of a plan, slotted per probe. */
std::vector<CVector>
runPlan(const EvalPlan &plan, StatevectorPool &pool, std::size_t probes)
{
    std::vector<CVector> states(probes);
    plan.execute(pool, [&](const std::vector<std::size_t> &leaf_probes,
                           const Statevector &state) {
        for (std::size_t i : leaf_probes)
            states[i] = state.amplitudes();
    });
    return states;
}

TEST(EvalPlan, SpsaPairSharesFixedPrefixOnUccsd)
{
    // An SPSA ± pair perturbs every parameter, so the shared prefix is
    // the fixed preamble (basis changes + CX ladder of the first Pauli
    // exponential). The plan must do strictly less gate-application
    // work than two independent preparations, bit-identically.
    const Ansatz ansatz = makeUccsdMinimalAnsatz();
    Rng rng(42);
    std::vector<double> x(ansatz.numParams());
    for (auto &t : x)
        t = rng.uniform(-1, 1);
    const std::vector<double> delta = rng.rademacherVector(x.size());
    std::vector<std::vector<double>> probes(2, x);
    for (std::size_t i = 0; i < x.size(); ++i) {
        probes[0][i] += 0.1 * delta[i];
        probes[1][i] -= 0.1 * delta[i];
    }

    const EvalPlan plan(ansatz.compiled(), probes, ansatz.initialBits());
    const EvalPlanStats &stats = plan.stats();
    EXPECT_EQ(stats.independentOps, 2 * stats.programOps);
    EXPECT_LT(stats.appliedOps, stats.independentOps);
    EXPECT_GT(stats.sharedOps(), 0u);

    StatevectorPool pool(ansatz.numQubits());
    const auto states = runPlan(plan, pool, probes.size());
    for (std::size_t i = 0; i < probes.size(); ++i) {
        Statevector ref(ansatz.numQubits());
        ansatz.prepareInto(ref, probes[i]);
        EXPECT_EQ(states[i], ref.amplitudes()) << "probe " << i;
    }
}

TEST(EvalPlan, SimplexBuildSharesPerCoordinatePrefixes)
{
    // A simplex build perturbs one coordinate per probe: probe i
    // shares the program prefix up to the first op reading param i.
    const Ansatz ansatz = makeHardwareEfficientAnsatz(4, 2, 0b0101);
    Rng rng(7);
    std::vector<double> base(ansatz.numParams());
    for (auto &t : base)
        t = rng.uniform(-2, 2);

    std::vector<std::vector<double>> probes;
    probes.push_back(base);
    for (std::size_t i = 0; i < base.size(); ++i) {
        probes.push_back(base);
        probes.back()[i] += 0.25;
    }

    const EvalPlan plan(ansatz.compiled(), probes, ansatz.initialBits());
    EXPECT_LT(plan.stats().appliedOps, plan.stats().independentOps);
    EXPECT_GE(plan.stats().checkpointNodes, probes.size());

    StatevectorPool pool(ansatz.numQubits());
    for (const std::size_t threads : {1u, 4u}) {
        PoolSizeGuard guard(threads);
        const auto states = runPlan(plan, pool, probes.size());
        for (std::size_t i = 0; i < probes.size(); ++i) {
            Statevector ref(ansatz.numQubits());
            ansatz.prepareInto(ref, probes[i]);
            EXPECT_EQ(states[i], ref.amplitudes())
                << "probe " << i << " threads " << threads;
        }
    }
}

TEST(EvalPlan, IdenticalProbesCollapseToOneLeaf)
{
    const Ansatz ansatz = makeHardwareEfficientAnsatz(3, 1, 0);
    const std::vector<double> theta(
        static_cast<std::size_t>(ansatz.numParams()), 0.4);
    const std::vector<std::vector<double>> probes(4, theta);

    const EvalPlan plan(ansatz.compiled(), probes, 0);
    // One straight-line preparation serves all four probes.
    EXPECT_EQ(plan.stats().appliedOps, plan.stats().programOps);
    EXPECT_EQ(plan.stats().checkpointNodes, 1u);

    StatevectorPool pool(ansatz.numQubits());
    const auto states = runPlan(plan, pool, probes.size());
    Statevector ref(ansatz.numQubits());
    ansatz.prepareInto(ref, theta);
    for (std::size_t i = 0; i < probes.size(); ++i)
        EXPECT_EQ(states[i], ref.amplitudes()) << "probe " << i;
}

TEST(EvalPlan, FullyDivergentPairFallsBackToIndependentWork)
{
    // HEA's first compiled op already reads parameters, so a pair
    // differing everywhere shares nothing — the plan must still be
    // correct and cost exactly the independent amount.
    const Ansatz ansatz = makeHardwareEfficientAnsatz(4, 1, 0);
    const auto probes = [&] {
        Rng rng(11);
        std::vector<std::vector<double>> out(2);
        for (auto &theta : out) {
            theta.resize(ansatz.numParams());
            for (auto &t : theta)
                t = rng.uniform(-2, 2);
        }
        return out;
    }();

    const EvalPlan plan(ansatz.compiled(), probes, 0);
    EXPECT_EQ(plan.stats().appliedOps, plan.stats().independentOps);

    StatevectorPool pool(ansatz.numQubits());
    const auto states = runPlan(plan, pool, probes.size());
    for (std::size_t i = 0; i < probes.size(); ++i) {
        Statevector ref(ansatz.numQubits());
        ansatz.prepareInto(ref, probes[i]);
        EXPECT_EQ(states[i], ref.amplitudes()) << "probe " << i;
    }
}

TEST(EvalPlan, LateSingleParamDivergenceSharesDeepPrefix)
{
    // Crafted probe set: rotations on every qubit, with only the very
    // last parameter differing — the prefix tree should share all but
    // the final fused op.
    Circuit c(3);
    std::vector<int> params;
    for (int q = 0; q < 3; ++q) {
        params.push_back(c.addParam());
        c.ryParam(q, params.back());
        c.cx(q, (q + 1) % 3);
    }
    const int last = c.addParam();
    c.ryParam(2, last);
    const Ansatz ansatz(std::move(c), 0);

    std::vector<std::vector<double>> probes(
        3, std::vector<double>{0.3, -0.6, 0.9, 0.0});
    probes[1].back() = 0.5;
    probes[2].back() = -0.5;

    const EvalPlan plan(ansatz.compiled(), probes, 0);
    // Shared ops: everything except each probe's final fused op.
    EXPECT_EQ(plan.stats().appliedOps,
              plan.stats().programOps - 1 + probes.size());

    StatevectorPool pool(ansatz.numQubits());
    const auto states = runPlan(plan, pool, probes.size());
    for (std::size_t i = 0; i < probes.size(); ++i) {
        Statevector ref(ansatz.numQubits());
        ansatz.prepareInto(ref, probes[i]);
        EXPECT_EQ(states[i], ref.amplitudes()) << "probe " << i;
    }
}

PauliPropConfig
exactShardConfig(int shards)
{
    PauliPropConfig cfg;
    cfg.maxWeight = 64;
    cfg.coefThreshold = 0.0;
    cfg.shards = shards;
    return cfg;
}

TEST(ShardedPropagation, MatchesSerialAtEveryShardCount)
{
    // Sharded vs serial live-map propagation at 1/2/4/8 shards on a
    // TFIM family over a 2-layer HEA: equality at 1e-12.
    const int n = 6;
    const auto fam = tfimFamily(n, 0.7, 1.3, 3);
    const Ansatz ansatz = makeHardwareEfficientAnsatz(n, 2, 0);
    Rng rng(23);
    std::vector<double> theta(ansatz.numParams());
    for (auto &t : theta)
        t = rng.uniform(-1.5, 1.5);

    const PauliPropagator serial(ansatz.compiled(),
                                 exactShardConfig(1));
    const std::vector<double> ref =
        serial.expectations(theta, fam, 0);

    for (const int shards : {2, 4, 8}) {
        const PauliPropagator sharded(ansatz.compiled(),
                                      exactShardConfig(shards));
        const std::vector<double> out =
            sharded.expectations(theta, fam, 0);
        ASSERT_EQ(out.size(), ref.size());
        for (std::size_t k = 0; k < ref.size(); ++k)
            EXPECT_NEAR(out[k], ref[k], 1e-12)
                << "shards " << shards << " observable " << k;
    }
}

TEST(ShardedPropagation, FixedShardCountIsPoolSizeInvariant)
{
    const int n = 6;
    const auto fam = tfimFamily(n, 0.7, 1.3, 3);
    const Ansatz ansatz = makeHardwareEfficientAnsatz(n, 2, 0);
    Rng rng(29);
    std::vector<double> theta(ansatz.numParams());
    for (auto &t : theta)
        t = rng.uniform(-1.5, 1.5);

    const PauliPropagator prop(ansatz.compiled(), exactShardConfig(4));
    std::vector<std::vector<double>> runs;
    for (const std::size_t threads : {1u, 2u, 8u}) {
        PoolSizeGuard guard(threads);
        runs.push_back(prop.expectations(theta, fam, 0));
    }
    for (std::size_t r = 1; r < runs.size(); ++r)
        EXPECT_EQ(runs[r], runs[0]);
}

TEST(ShardedPropagation, ShardedAgreesWithStatevector)
{
    const int n = 5;
    const auto fam = tfimFamily(n, 0.5, 1.5, 2);
    const Ansatz ansatz = makeHardwareEfficientAnsatz(n, 1, 0);
    Rng rng(31);
    std::vector<double> theta(ansatz.numParams());
    for (auto &t : theta)
        t = rng.uniform(-1, 1);

    const Statevector state = ansatz.prepare(theta);
    const PauliPropagator prop(ansatz.compiled(), exactShardConfig(4));
    const std::vector<double> out = prop.expectations(theta, fam, 0);
    for (std::size_t k = 0; k < fam.size(); ++k)
        EXPECT_NEAR(out[k], expectation(state, fam[k]), 1e-10)
            << "observable " << k;
}

TEST(SimBackend, SelectionByName)
{
    const auto fam = tfimFamily(4, 0.5, 1.5, 2);
    const Ansatz ansatz = makeHardwareEfficientAnsatz(4, 1, 0);

    const ClusterObjective by_default(fam, ansatz, EngineConfig{});
    EXPECT_EQ(by_default.backendName(), "statevector");

    EngineConfig named;
    named.backendName = "paulprop";
    named.propConfig.maxWeight = 64;
    named.propConfig.coefThreshold = 0.0;
    const ClusterObjective by_name(fam, ansatz, named);
    EXPECT_EQ(by_name.backendName(), "paulprop");

    // The legacy enum still resolves when no name is given.
    EngineConfig legacy;
    legacy.backend = Backend::PauliPropagation;
    legacy.propConfig.maxWeight = 64;
    legacy.propConfig.coefThreshold = 0.0;
    const ClusterObjective by_enum(fam, ansatz, legacy);
    EXPECT_EQ(by_enum.backendName(), "paulprop");

    EXPECT_EQ(simBackendNames().size(), 2u);

    EngineConfig bogus;
    bogus.backendName = "tensor-network";
    EXPECT_THROW(ClusterObjective(fam, ansatz, bogus),
                 std::invalid_argument);
}

TEST(SimBackend, EngineConfigJsonRoundTripIsLossless)
{
    // spec -> EngineConfig -> serialized spec must be lossless for
    // every registered backend, including all numeric knobs.
    for (const std::string &name : simBackendNames()) {
        EngineConfig config;
        config.backendName = name;
        config.shotsPerTerm = 12345;
        config.injectShotNoise = false;
        config.noise = NoiseModel(0.995, 0.98, "test-device");
        config.propConfig.maxWeight = 5;
        config.propConfig.coefThreshold = 3.25e-9;
        config.propConfig.maxTerms = (1ull << 53) + 1; // > 2^53
        config.propConfig.shards = 4;

        const JsonValue serialized = engineConfigToJson(config);
        const EngineConfig restored = engineConfigFromJson(serialized);
        EXPECT_EQ(resolvedBackendName(restored), name);
        EXPECT_EQ(restored.shotsPerTerm, config.shotsPerTerm);
        EXPECT_EQ(restored.injectShotNoise, config.injectShotNoise);
        EXPECT_EQ(restored.noise.gateFidelity(),
                  config.noise.gateFidelity());
        EXPECT_EQ(restored.noise.readoutFidelity(),
                  config.noise.readoutFidelity());
        EXPECT_EQ(restored.noise.name(), config.noise.name());
        EXPECT_EQ(restored.propConfig.maxWeight,
                  config.propConfig.maxWeight);
        EXPECT_EQ(restored.propConfig.coefThreshold,
                  config.propConfig.coefThreshold);
        EXPECT_EQ(restored.propConfig.maxTerms,
                  config.propConfig.maxTerms);
        EXPECT_EQ(restored.propConfig.shards,
                  config.propConfig.shards);

        // Round-trip fixed point: re-serializing the restored config
        // reproduces the document byte-for-byte.
        EXPECT_EQ(engineConfigToJson(restored).dump(),
                  serialized.dump());
    }

    // The legacy enum resolves to a name on serialization, so enum
    // configs survive the JSON seam too.
    EngineConfig legacy;
    legacy.backend = Backend::PauliPropagation;
    const EngineConfig restored =
        engineConfigFromJson(engineConfigToJson(legacy));
    EXPECT_EQ(resolvedBackendName(restored), "paulprop");
}

TEST(SimBackend, EngineConfigJsonUnknownBackendFailsClearly)
{
    JsonValue doc = JsonValue::object();
    doc.set("backend", JsonValue("tensor-network"));
    try {
        engineConfigFromJson(doc);
        FAIL() << "unknown backend must throw";
    } catch (const std::invalid_argument &e) {
        const std::string message = e.what();
        // The error names the offender and the valid choices.
        EXPECT_NE(message.find("tensor-network"), std::string::npos)
            << message;
        EXPECT_NE(message.find("statevector"), std::string::npos)
            << message;
        EXPECT_NE(message.find("paulprop"), std::string::npos)
            << message;
    }
}

TEST(SimBackend, NamedBackendsAgreeOnExactEnergies)
{
    const auto fam = tfimFamily(4, 0.5, 1.5, 3);
    const Ansatz ansatz = makeHardwareEfficientAnsatz(4, 1, 0b0011);
    Rng rng(37);
    std::vector<double> theta(ansatz.numParams());
    for (auto &t : theta)
        t = rng.uniform(-1, 1);

    EngineConfig sv;
    sv.backendName = "statevector";
    EngineConfig pp;
    pp.backendName = "paulprop";
    pp.propConfig.maxWeight = 64;
    pp.propConfig.coefThreshold = 0.0;
    pp.propConfig.shards = 2;

    const ClusterObjective a(fam, ansatz, sv);
    const ClusterObjective b(fam, ansatz, pp);
    const auto ea = a.exactTaskEnergies(theta);
    const auto eb = b.exactTaskEnergies(theta);
    ASSERT_EQ(ea.size(), eb.size());
    for (std::size_t i = 0; i < ea.size(); ++i)
        EXPECT_NEAR(ea[i], eb[i], 1e-8) << "task " << i;
    EXPECT_NEAR(a.exactMixedEnergy(theta), b.exactMixedEnergy(theta),
                1e-8);
}

TEST(EvaluateBatchPlan, SharedPrefixBatchMatchesSerialBitwise)
{
    // evaluateBatch routes through EvalPlan; crafted batches with
    // heavy prefix sharing (duplicates + single-coordinate probes)
    // must still reproduce serial evaluate() bit-for-bit.
    const auto fam = tfimFamily(5, 0.5, 1.5, 3);
    const Ansatz ansatz = makeHardwareEfficientAnsatz(5, 2, 0b00110);
    const ClusterObjective obj(fam, ansatz, EngineConfig{});

    Rng theta_rng(41);
    std::vector<double> base(ansatz.numParams());
    for (auto &t : base)
        t = theta_rng.uniform(-2, 2);
    std::vector<std::vector<double>> probes;
    probes.push_back(base);
    probes.push_back(base); // exact duplicate
    for (std::size_t i = 0; i < 4; ++i) {
        probes.push_back(base);
        probes.back()[i] += 0.3;
    }

    for (const std::size_t threads : {1u, 4u}) {
        PoolSizeGuard guard(threads);
        Rng rng(55);
        const auto batch = obj.evaluateBatch(probes, rng);

        Rng serial_rng(55);
        const std::uint64_t stream = serial_rng.nextU64();
        for (std::size_t i = 0; i < probes.size(); ++i) {
            Rng probe = ClusterObjective::probeRng(stream, i);
            const ClusterEvaluation ev = obj.evaluate(probes[i], probe);
            EXPECT_EQ(batch[i].mixedEnergy, ev.mixedEnergy)
                << "probe " << i << " threads " << threads;
            EXPECT_EQ(batch[i].taskEnergies, ev.taskEnergies);
            EXPECT_EQ(batch[i].shotsUsed, ev.shotsUsed);
        }
    }
}

} // namespace
} // namespace treevqa

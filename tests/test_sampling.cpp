/**
 * @file
 * Tests for the true measurement-sampling estimator, including the
 * validation that the production Gaussian shot model matches real
 * multinomial statistics.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/hardware_efficient.h"
#include "common/rng.h"
#include "ham/spin_chains.h"
#include "sim/expectation.h"
#include "sim/sampling.h"
#include "sim/shot_estimator.h"

namespace treevqa {
namespace {

Statevector
randomState(std::uint64_t seed, int n)
{
    Rng rng(seed);
    const Ansatz a = makeHardwareEfficientAnsatz(n, 2, 0);
    std::vector<double> theta(a.numParams());
    for (auto &t : theta)
        t = rng.uniform(-2, 2);
    return a.prepare(theta);
}

TEST(Sampling, DiagonalStringOnBasisStateIsExact)
{
    Statevector s(3);
    s.setBasisState(0b101);
    Rng rng(1);
    EXPECT_DOUBLE_EQ(
        sampledExpectation(s, PauliString::fromLabel("ZII"), 64, rng),
        -1.0);
    EXPECT_DOUBLE_EQ(
        sampledExpectation(s, PauliString::fromLabel("IZI"), 64, rng),
        1.0);
}

TEST(Sampling, XStringOnPlusStateIsExact)
{
    Statevector s(2);
    s.applyH(0);
    Rng rng(2);
    // |+> is an X eigenstate: every sample gives +1.
    EXPECT_DOUBLE_EQ(
        sampledExpectation(s, PauliString::fromLabel("XI"), 32, rng),
        1.0);
}

TEST(Sampling, IdentityIsFree)
{
    Statevector s(2);
    Rng rng(3);
    EXPECT_DOUBLE_EQ(sampledExpectation(s, PauliString(2), 8, rng),
                     1.0);
}

TEST(Sampling, ConvergesToExactExpectation)
{
    const Statevector s = randomState(4, 4);
    const PauliString p = PauliString::fromLabel("XZYI");
    const double exact = expectation(s, p);
    Rng rng(5);
    const double est = sampledExpectation(s, p, 200000, rng);
    EXPECT_NEAR(est, exact, 0.01);
}

TEST(Sampling, HamiltonianEstimateMatchesExact)
{
    const Statevector s = randomState(6, 4);
    const PauliSum h = xxzChain(4, 1.0, 0.7);
    const double exact = expectation(s, h);
    Rng rng(7);
    const SampledEstimate est =
        sampledHamiltonianEstimate(s, h, 100000, rng);
    EXPECT_NEAR(est.energy, exact, 0.05);
    EXPECT_EQ(est.termEstimates.size(), h.numTerms());
}

TEST(Sampling, ShotAccountingPerGroup)
{
    const Statevector s = randomState(8, 4);
    const PauliSum h = transverseFieldIsing(4, 1.0, 1.0);
    Rng rng(9);
    const SampledEstimate est =
        sampledHamiltonianEstimate(s, h, 512, rng);
    // TFIM has two QWC groups.
    EXPECT_EQ(est.circuitsUsed, 2u);
    EXPECT_EQ(est.shotsUsed, 2ull * 512);
}

TEST(Sampling, GaussianModelMatchesTrueSamplingMoments)
{
    // The production ShotEstimator claims the exact asymptotic
    // distribution of the sampling estimator: compare mean and
    // variance of both estimators for the same string/state/shots.
    const Statevector s = randomState(10, 3);
    const PauliString p = PauliString::fromLabel("XZI");
    const double exact = expectation(s, p);
    const std::uint64_t shots = 256;

    Rng rng(11);
    const int trials = 4000;
    double samp_sum = 0.0, samp_sum2 = 0.0;
    for (int t = 0; t < trials; ++t) {
        const double e = sampledExpectation(s, p, shots, rng);
        samp_sum += e;
        samp_sum2 += e * e;
    }
    const double samp_mean = samp_sum / trials;
    const double samp_var =
        samp_sum2 / trials - samp_mean * samp_mean;

    PauliSum h(3);
    h.add(1.0, p);
    ShotEstimator model(shots, true);
    double model_sum = 0.0, model_sum2 = 0.0;
    for (int t = 0; t < trials; ++t) {
        const double e = model.estimate(h, {exact}, rng).energy;
        model_sum += e;
        model_sum2 += e * e;
    }
    const double model_mean = model_sum / trials;
    const double model_var =
        model_sum2 / trials - model_mean * model_mean;

    EXPECT_NEAR(samp_mean, exact, 0.01);
    EXPECT_NEAR(model_mean, exact, 0.01);
    // Variances agree within 15% relative (clamping + multinomial
    // discreteness cause small deviations).
    EXPECT_NEAR(model_var, samp_var, 0.15 * samp_var + 1e-6);
}

/** Shots sweep: empirical variance scales as 1/S. */
class SamplingShotsSweep
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SamplingShotsSweep, VarianceScalesInverseShots)
{
    const std::uint64_t shots = GetParam();
    Statevector s(1);
    s.applyH(0); // <Z> = 0: variance is exactly 1/S
    Rng rng(12);
    const int trials = 3000;
    double sum2 = 0.0;
    for (int t = 0; t < trials; ++t) {
        const double e = sampledExpectation(
            s, PauliString::fromLabel("Z"), shots, rng);
        sum2 += e * e;
    }
    EXPECT_NEAR(sum2 / trials, 1.0 / shots, 0.2 / shots);
}

INSTANTIATE_TEST_SUITE_P(Shots, SamplingShotsSweep,
                         ::testing::Values(64ull, 256ull, 1024ull));

} // namespace
} // namespace treevqa

/**
 * @file
 * Tests for the cluster objective: mixed-Hamiltonian construction,
 * shot accounting, recombination invariants, backend agreement.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/hardware_efficient.h"
#include "core/objective.h"
#include "ham/spin_chains.h"

namespace treevqa {
namespace {

EngineConfig
noiselessExact()
{
    EngineConfig cfg;
    cfg.injectShotNoise = false;
    return cfg;
}

TEST(Objective, MixedEnergyIsMeanOfTaskEnergies)
{
    // E_mixed(theta) == mean_i E_i(theta) exactly (linearity of the
    // padded average), for any theta.
    const auto fam = tfimFamily(4, 0.4, 1.6, 5);
    const Ansatz ansatz = makeHardwareEfficientAnsatz(4, 2, 0b0101);
    ClusterObjective obj(fam, ansatz, noiselessExact());

    Rng rng(1);
    std::vector<double> theta(ansatz.numParams());
    for (auto &t : theta)
        t = rng.uniform(-2, 2);

    const ClusterEvaluation ev = obj.evaluate(theta, rng);
    double mean = 0.0;
    for (double e : ev.taskEnergies)
        mean += e / static_cast<double>(ev.taskEnergies.size());
    EXPECT_NEAR(ev.mixedEnergy, mean, 1e-10);
}

TEST(Objective, EvalCostUsesSupersetSize)
{
    // TFIM family shares its term structure: the superset equals one
    // task's term count, so the cluster evaluation costs the same as a
    // single-task evaluation — TreeVQA's core saving.
    const auto fam = tfimFamily(5, 0.5, 1.5, 8);
    const Ansatz ansatz = makeHardwareEfficientAnsatz(5, 2, 0);
    ClusterObjective obj(fam, ansatz, EngineConfig{});
    EXPECT_EQ(obj.evalCost(),
              kDefaultShotsPerTerm * fam[0].numMeasuredTerms());
}

TEST(Objective, ExactTaskEnergyMatchesEvaluateNoiseless)
{
    const auto fam = xxzFamily(4, 0.5, 1.5, 3);
    const Ansatz ansatz = makeHardwareEfficientAnsatz(4, 2, 0b0011);
    ClusterObjective obj(fam, ansatz, noiselessExact());
    Rng rng(2);
    std::vector<double> theta(ansatz.numParams());
    for (auto &t : theta)
        t = rng.uniform(-1, 1);
    const ClusterEvaluation ev = obj.evaluate(theta, rng);
    for (std::size_t i = 0; i < fam.size(); ++i)
        EXPECT_NEAR(ev.taskEnergies[i], obj.exactTaskEnergy(i, theta),
                    1e-10);
    const auto all = obj.exactTaskEnergies(theta);
    for (std::size_t i = 0; i < fam.size(); ++i)
        EXPECT_NEAR(all[i], ev.taskEnergies[i], 1e-10);
}

TEST(Objective, ShotNoiseIsUnbiasedOnAverage)
{
    const auto fam = tfimFamily(3, 0.8, 1.2, 2);
    const Ansatz ansatz = makeHardwareEfficientAnsatz(3, 1, 0);
    EngineConfig noisy;
    noisy.shotsPerTerm = 256;
    ClusterObjective obj(fam, ansatz, noisy);

    ClusterObjective exact(fam, ansatz, noiselessExact());
    Rng rng(3);
    std::vector<double> theta(ansatz.numParams());
    for (auto &t : theta)
        t = rng.uniform(-1, 1);
    const double truth = exact.evaluate(theta, rng).mixedEnergy;

    double sum = 0.0;
    const int trials = 3000;
    for (int i = 0; i < trials; ++i)
        sum += obj.evaluate(theta, rng).mixedEnergy;
    EXPECT_NEAR(sum / trials, truth, 0.02);
}

TEST(Objective, BackendsAgreeNoiselessly)
{
    const auto fam = tfimFamily(4, 0.5, 1.5, 3);
    const Ansatz ansatz = makeHardwareEfficientAnsatz(4, 2, 0b0011);

    EngineConfig sv = noiselessExact();
    EngineConfig pp = noiselessExact();
    pp.backend = Backend::PauliPropagation;
    pp.propConfig.maxWeight = 64;
    pp.propConfig.coefThreshold = 0.0;

    ClusterObjective obj_sv(fam, ansatz, sv);
    ClusterObjective obj_pp(fam, ansatz, pp);

    Rng rng(4);
    std::vector<double> theta(ansatz.numParams());
    for (auto &t : theta)
        t = rng.uniform(-1, 1);

    const ClusterEvaluation ev_sv = obj_sv.evaluate(theta, rng);
    const ClusterEvaluation ev_pp = obj_pp.evaluate(theta, rng);
    EXPECT_NEAR(ev_sv.mixedEnergy, ev_pp.mixedEnergy, 1e-8);
    for (std::size_t i = 0; i < fam.size(); ++i)
        EXPECT_NEAR(ev_sv.taskEnergies[i], ev_pp.taskEnergies[i], 1e-8);
    EXPECT_EQ(ev_sv.shotsUsed, ev_pp.shotsUsed);
}

TEST(Objective, NoiseDampsTowardTrace)
{
    // Global depolarizing pulls the energy toward Tr(H)/2^n.
    const auto fam = tfimFamily(4, 1.0, 1.0, 1);
    const Ansatz ansatz = makeHardwareEfficientAnsatz(4, 2, 0);
    EngineConfig clean = noiselessExact();
    EngineConfig noisy = noiselessExact();
    noisy.noise = NoiseModel(0.9, 0.95, "heavy");

    ClusterObjective obj_clean(fam, ansatz, clean);
    ClusterObjective obj_noisy(fam, ansatz, noisy);
    Rng rng(5);
    std::vector<double> theta(ansatz.numParams());
    for (auto &t : theta)
        t = rng.uniform(-1, 1);

    const double e_clean = obj_clean.evaluate(theta, rng).mixedEnergy;
    const double e_noisy = obj_noisy.evaluate(theta, rng).mixedEnergy;
    const double trace = fam[0].normalizedTrace(); // 0 for TFIM
    EXPECT_LT(std::fabs(e_noisy - trace), std::fabs(e_clean - trace));
}

TEST(Objective, ExactMixedEnergyConsistent)
{
    const auto fam = xxzFamily(3, 0.4, 1.2, 4);
    const Ansatz ansatz = makeHardwareEfficientAnsatz(3, 1, 0);
    ClusterObjective obj(fam, ansatz, noiselessExact());
    Rng rng(6);
    std::vector<double> theta(ansatz.numParams());
    for (auto &t : theta)
        t = rng.uniform(-1, 1);
    const auto tasks = obj.exactTaskEnergies(theta);
    double mean = 0.0;
    for (double e : tasks)
        mean += e / static_cast<double>(tasks.size());
    EXPECT_NEAR(obj.exactMixedEnergy(theta), mean, 1e-10);
}

TEST(Objective, MixedHamiltonianIsHermitianAverage)
{
    PauliSum a(2), b(2);
    a.add(1.0, "ZI");
    b.add(2.0, "ZI");
    b.add(1.0, "XX");
    const Ansatz ansatz = makeHardwareEfficientAnsatz(2, 1, 0);
    ClusterObjective obj({a, b}, ansatz, noiselessExact());
    EXPECT_NEAR(
        obj.mixed().coefficientOf(PauliString::fromLabel("ZI")), 1.5,
        1e-12);
    EXPECT_NEAR(
        obj.mixed().coefficientOf(PauliString::fromLabel("XX")), 0.5,
        1e-12);
}

} // namespace
} // namespace treevqa

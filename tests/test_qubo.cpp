/**
 * @file
 * Tests for general QUBO -> Ising conversion (Section 6 substrate).
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ham/qubo.h"
#include "linalg/lanczos.h"

namespace treevqa {
namespace {

TEST(Qubo, EvaluateByHand)
{
    // Q = [[1, -2], [-2, 3]]: f(00)=0, f(10)=1, f(01)=3, f(11)=0.
    Qubo q(2);
    q.set(0, 0, 1.0);
    q.set(1, 1, 3.0);
    q.set(0, 1, -2.0);
    EXPECT_DOUBLE_EQ(q.evaluate(0b00), 0.0);
    EXPECT_DOUBLE_EQ(q.evaluate(0b01), 1.0);
    EXPECT_DOUBLE_EQ(q.evaluate(0b10), 3.0);
    EXPECT_DOUBLE_EQ(q.evaluate(0b11), 0.0);
    EXPECT_DOUBLE_EQ(q.minimumBruteForce(), 0.0);
}

TEST(Qubo, HamiltonianSpectrumMatchesObjective)
{
    // Every computational basis state's energy equals the QUBO value
    // of the corresponding assignment.
    Qubo q(3);
    q.set(0, 0, 1.0);
    q.set(1, 1, -2.0);
    q.set(2, 2, 0.5);
    q.set(0, 1, 1.5);
    q.set(1, 2, -0.75);
    const PauliSum h = q.toHamiltonian();

    for (std::uint64_t a = 0; a < 8; ++a) {
        CVector state(8, Complex(0, 0));
        state[a] = 1.0;
        EXPECT_NEAR(h.expectation(state), q.evaluate(a), 1e-12)
            << "assignment " << a;
    }
}

TEST(Qubo, GroundEnergyEqualsBruteForceMinimum)
{
    Rng rng(1);
    for (int trial = 0; trial < 5; ++trial) {
        Qubo q(4);
        for (std::size_t i = 0; i < 4; ++i)
            for (std::size_t j = i; j < 4; ++j)
                q.set(i, j, rng.uniform(-2, 2));
        const PauliSum h = q.toHamiltonian();
        const MatVec mv = [&h](const CVector &x, CVector &y) {
            h.applyTo(x, y);
        };
        Rng lrng(trial + 10);
        EXPECT_NEAR(lanczosGroundState(16, mv, lrng).eigenvalue,
                    q.minimumBruteForce(), 1e-8);
    }
}

TEST(Qubo, HamiltonianIsDiagonal)
{
    Qubo q(3);
    q.set(0, 1, 1.0);
    q.set(2, 2, -1.0);
    const PauliSum h = q.toHamiltonian();
    for (const auto &term : h.terms())
        EXPECT_TRUE(term.string.isDiagonal());
}

TEST(Qubo, ClausesListOffDiagonalCouplings)
{
    Qubo q(3);
    q.set(0, 1, 1.5);
    q.set(1, 2, -0.5);
    q.set(0, 0, 9.0); // diagonal: not a clause
    const auto clauses = q.clauses();
    ASSERT_EQ(clauses.size(), 2u);
    EXPECT_EQ(clauses[0].u, 0);
    EXPECT_EQ(clauses[0].v, 1);
    EXPECT_DOUBLE_EQ(clauses[0].weight, 1.5);
}

TEST(Qubo, SymmetricWrites)
{
    Qubo q(2);
    q.set(0, 1, 2.5);
    EXPECT_DOUBLE_EQ(q.get(1, 0), 2.5);
}

} // namespace
} // namespace treevqa

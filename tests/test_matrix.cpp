/**
 * @file
 * Tests for the dense real matrix and linear solver.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "linalg/matrix.h"

namespace treevqa {
namespace {

TEST(Matrix, IdentityAndAccess)
{
    Matrix id = Matrix::identity(3);
    for (std::size_t i = 0; i < 3; ++i)
        for (std::size_t j = 0; j < 3; ++j)
            EXPECT_DOUBLE_EQ(id(i, j), i == j ? 1.0 : 0.0);
}

TEST(Matrix, MultiplyKnownProduct)
{
    Matrix a(2, 3);
    a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
    a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
    Matrix b(3, 2);
    b(0, 0) = 7;  b(0, 1) = 8;
    b(1, 0) = 9;  b(1, 1) = 10;
    b(2, 0) = 11; b(2, 1) = 12;
    Matrix c = a.multiply(b);
    EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
    EXPECT_DOUBLE_EQ(c(0, 1), 64.0);
    EXPECT_DOUBLE_EQ(c(1, 0), 139.0);
    EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
}

TEST(Matrix, TransposeRoundTrip)
{
    Rng rng(1);
    Matrix a(4, 6);
    for (std::size_t i = 0; i < 4; ++i)
        for (std::size_t j = 0; j < 6; ++j)
            a(i, j) = rng.normal();
    const Matrix att = a.transposed().transposed();
    EXPECT_DOUBLE_EQ(a.maxAbsDiff(att), 0.0);
}

TEST(Matrix, ApplyMatchesMultiply)
{
    Matrix a(2, 2);
    a(0, 0) = 2; a(0, 1) = -1;
    a(1, 0) = 0; a(1, 1) = 3;
    const std::vector<double> v = {4.0, 5.0};
    const auto out = a.apply(v);
    EXPECT_DOUBLE_EQ(out[0], 3.0);
    EXPECT_DOUBLE_EQ(out[1], 15.0);
}

TEST(Matrix, SymmetryCheck)
{
    Matrix a(2, 2);
    a(0, 0) = 1; a(0, 1) = 2; a(1, 0) = 2; a(1, 1) = 3;
    EXPECT_TRUE(a.isSymmetric());
    a(1, 0) = 2.5;
    EXPECT_FALSE(a.isSymmetric());
    Matrix rect(2, 3);
    EXPECT_FALSE(rect.isSymmetric());
}

TEST(Solve, KnownSystem)
{
    Matrix a(2, 2);
    a(0, 0) = 3; a(0, 1) = 1;
    a(1, 0) = 1; a(1, 1) = 2;
    const auto x = solveLinearSystem(a, {9.0, 8.0});
    ASSERT_EQ(x.size(), 2u);
    EXPECT_NEAR(x[0], 2.0, 1e-12);
    EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Solve, SingularReturnsEmpty)
{
    Matrix a(2, 2);
    a(0, 0) = 1; a(0, 1) = 2;
    a(1, 0) = 2; a(1, 1) = 4;
    EXPECT_TRUE(solveLinearSystem(a, {1.0, 2.0}).empty());
}

TEST(Solve, NeedsPivoting)
{
    // Zero pivot in the naive order; partial pivoting must handle it.
    Matrix a(2, 2);
    a(0, 0) = 0; a(0, 1) = 1;
    a(1, 0) = 1; a(1, 1) = 0;
    const auto x = solveLinearSystem(a, {2.0, 3.0});
    ASSERT_EQ(x.size(), 2u);
    EXPECT_NEAR(x[0], 3.0, 1e-12);
    EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Solve, RandomSystemsRoundTrip)
{
    Rng rng(3);
    for (int trial = 0; trial < 20; ++trial) {
        const std::size_t n = 1 + rng.uniformInt(12);
        Matrix a(n, n);
        std::vector<double> x_true(n);
        for (std::size_t i = 0; i < n; ++i) {
            x_true[i] = rng.normal();
            for (std::size_t j = 0; j < n; ++j)
                a(i, j) = rng.normal();
            a(i, i) += 3.0; // diagonally dominant-ish: well conditioned
        }
        const std::vector<double> b = a.apply(x_true);
        const auto x = solveLinearSystem(a, b);
        ASSERT_EQ(x.size(), n);
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_NEAR(x[i], x_true[i], 1e-8);
    }
}

TEST(VectorOps, DotNormAxpyScale)
{
    const std::vector<double> a = {1.0, 2.0, 2.0};
    const std::vector<double> b = {3.0, 0.0, 4.0};
    EXPECT_DOUBLE_EQ(dot(a, b), 11.0);
    EXPECT_DOUBLE_EQ(norm2(a), 3.0);
    const auto c = axpy(a, 2.0, b);
    EXPECT_DOUBLE_EQ(c[0], 7.0);
    EXPECT_DOUBLE_EQ(c[2], 10.0);
    std::vector<double> d = a;
    scale(d, -1.0);
    EXPECT_DOUBLE_EQ(d[1], -2.0);
}

} // namespace
} // namespace treevqa

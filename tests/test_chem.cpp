/**
 * @file
 * Tests for the ab-initio chemistry substrate: Boys function, Gaussian
 * integrals, Hartree-Fock, Jordan-Wigner — validated against published
 * H2/STO-3G reference values.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "chem/boys.h"
#include "chem/jordan_wigner.h"
#include "chem/molecule.h"
#include "common/rng.h"
#include "linalg/lanczos.h"

namespace treevqa {
namespace {

TEST(Boys, LimitsAndKnownValues)
{
    EXPECT_DOUBLE_EQ(boysF0(0.0), 1.0);
    // F0(t) -> (1/2) sqrt(pi/t) for large t.
    EXPECT_NEAR(boysF0(100.0), 0.5 * std::sqrt(M_PI / 100.0), 1e-10);
    // Continuity across the series/erf switch at t = 1e-3: both
    // branches agree at the boundary to high precision.
    EXPECT_NEAR(boysF0(1e-3 - 1e-12), boysF0(1e-3 + 1e-12), 1e-10);
    // Monotone decreasing.
    EXPECT_GT(boysF0(0.1), boysF0(0.2));
}

TEST(Gaussian, NormalizedSelfOverlap)
{
    const ContractedGaussian g = sto3gHydrogen({0, 0, 0});
    EXPECT_NEAR(overlap(g, g), 1.0, 1e-6);
}

TEST(Gaussian, OverlapDecaysWithDistance)
{
    const ContractedGaussian a = sto3gHydrogen({0, 0, 0});
    const ContractedGaussian b = sto3gHydrogen({0, 0, 1.0});
    const ContractedGaussian c = sto3gHydrogen({0, 0, 3.0});
    EXPECT_GT(overlap(a, b), overlap(a, c));
    EXPECT_GT(overlap(a, b), 0.0);
    EXPECT_LT(overlap(a, b), 1.0);
}

TEST(Gaussian, SzaboOstlundH2ReferenceIntegrals)
{
    // Szabo & Ostlund table 3.5-ish values for H2 at R = 1.4 Bohr in
    // STO-3G (zeta = 1.24): S12 ~ 0.6593, T11 ~ 0.7600, V11 (one
    // nucleus) ~ -1.2266.
    const Vec3 r1{0, 0, 0}, r2{0, 0, 1.4};
    const ContractedGaussian g1 = sto3gHydrogen(r1);
    const ContractedGaussian g2 = sto3gHydrogen(r2);
    EXPECT_NEAR(overlap(g1, g2), 0.6593, 2e-3);
    EXPECT_NEAR(kinetic(g1, g1), 0.7600, 2e-3);
    EXPECT_NEAR(nuclearAttraction(g1, g1, r1, 1.0), -1.2266, 2e-3);
    // (11|11) ~ 0.7746.
    EXPECT_NEAR(electronRepulsion(g1, g1, g1, g1), 0.7746, 2e-3);
}

TEST(HartreeFock, H2EquilibriumEnergy)
{
    // RHF/STO-3G H2 at 0.7414 A: E ~ -1.1167 Hartree.
    const MoleculeProblem p = buildH2(0.7414);
    EXPECT_NEAR(p.hartreeFockEnergy, -1.1167, 2e-3);
    EXPECT_EQ(p.numQubits, 4);
    EXPECT_EQ(p.hartreeFockBits, 0b0011u);
}

TEST(HartreeFock, NuclearRepulsionKnown)
{
    const MoleculeProblem p = buildH2(0.7414);
    // E_nuc = 1 / R = 1 / (0.7414 * 1.8897...) ~ 0.7137 Hartree.
    EXPECT_NEAR(p.nuclearRepulsion,
                1.0 / (0.7414 * kAngstromToBohr), 1e-10);
}

TEST(JordanWigner, H2TermCountMatchesTable1)
{
    const MoleculeProblem p = buildH2(0.74);
    EXPECT_EQ(p.hamiltonian.numTerms(), 15u); // paper Table 1
}

TEST(JordanWigner, H2FciEnergy)
{
    // FCI/STO-3G H2 at 0.7414 A: E ~ -1.1373 Hartree (the 4-qubit
    // Hamiltonian's exact ground energy).
    const MoleculeProblem p = buildH2(0.7414);
    Rng rng(1);
    const PauliSum &h = p.hamiltonian;
    const MatVec matvec = [&](const CVector &x, CVector &y) {
        h.applyTo(x, y);
    };
    const LanczosResult gs = lanczosGroundState(16, matvec, rng);
    EXPECT_NEAR(gs.eigenvalue, -1.1373, 2e-3);
    // Correlation energy is negative: FCI below HF.
    EXPECT_LT(gs.eigenvalue, p.hartreeFockEnergy);
}

TEST(JordanWigner, NumberOperatorImage)
{
    // a_0^dag a_0 -> (I - Z_0)/2.
    FermionOperator n_op(2);
    n_op.add(1.0, {LadderOp{0, true}, LadderOp{0, false}});
    const PauliSum q = jordanWigner(n_op);
    EXPECT_NEAR(q.coefficientOf(PauliString::fromLabel("II")), 0.5,
                1e-12);
    EXPECT_NEAR(q.coefficientOf(PauliString::fromLabel("ZI")), -0.5,
                1e-12);
    EXPECT_EQ(q.numTerms(), 2u);
}

TEST(JordanWigner, HoppingImageHasParityString)
{
    // a_0^dag a_2 + a_2^dag a_0 -> (X Z X + Y Z Y)/2.
    FermionOperator hop(3);
    hop.add(1.0, {LadderOp{0, true}, LadderOp{2, false}});
    hop.add(1.0, {LadderOp{2, true}, LadderOp{0, false}});
    const PauliSum q = jordanWigner(hop);
    EXPECT_NEAR(q.coefficientOf(PauliString::fromLabel("XZX")), 0.5,
                1e-12);
    EXPECT_NEAR(q.coefficientOf(PauliString::fromLabel("YZY")), 0.5,
                1e-12);
}

TEST(JordanWigner, NonHermitianInputThrows)
{
    FermionOperator bad(2);
    bad.add(1.0, {LadderOp{0, true}, LadderOp{1, false}}); // no h.c.
    EXPECT_THROW(jordanWigner(bad), std::runtime_error);
}

TEST(Molecule, DissociationCurveShape)
{
    // Energy has a minimum near the equilibrium bond length.
    Rng rng(2);
    auto fci = [&](double bond) {
        const MoleculeProblem p = buildH2(bond);
        const PauliSum &h = p.hamiltonian;
        const MatVec matvec = [&](const CVector &x, CVector &y) {
            h.applyTo(x, y);
        };
        return lanczosGroundState(16, matvec, rng).eigenvalue;
    };
    const double e_short = fci(0.45);
    const double e_eq = fci(0.74);
    const double e_long = fci(2.2);
    EXPECT_GT(e_short, e_eq);
    EXPECT_GT(e_long, e_eq);
}

TEST(Molecule, NeighboringBondsSimilarHamiltonians)
{
    // Fig. 4c premise: l1 distance grows with bond-length separation.
    const PauliSum h1 = buildH2(0.74).hamiltonian;
    const PauliSum h2 = buildH2(0.77).hamiltonian;
    const PauliSum h3 = buildH2(1.10).hamiltonian;
    EXPECT_LT(l1Distance(h1, h2), l1Distance(h1, h3));
}

TEST(Molecule, HChainBuildsAndIsHermitianSized)
{
    const MoleculeProblem p = buildHChain(4, 0.9);
    EXPECT_EQ(p.numQubits, 8);
    EXPECT_EQ(p.hartreeFockBits, 0b1111u);
    EXPECT_GT(p.hamiltonian.numTerms(), 50u);
    // HF energy must be finite and below zero for a bound chain.
    EXPECT_LT(p.hartreeFockEnergy, 0.0);
    EXPECT_TRUE(std::isfinite(p.hartreeFockEnergy));
}

/** Bond sweep: HF energy is smooth (no SCF blowups) over the paper's
 * H2 range. */
class H2BondSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(H2BondSweep, ScfConvergesAndEnergiesSane)
{
    const MoleculeProblem p = buildH2(GetParam());
    EXPECT_TRUE(std::isfinite(p.hartreeFockEnergy));
    EXPECT_LT(p.hartreeFockEnergy, -0.5);
    EXPECT_GT(p.hartreeFockEnergy, -1.3);
    EXPECT_EQ(p.hamiltonian.numTerms(), 15u);
}

INSTANTIATE_TEST_SUITE_P(Bonds, H2BondSweep,
                         ::testing::Values(0.60, 0.74, 0.78, 0.83, 1.0,
                                           1.5));

} // namespace
} // namespace treevqa

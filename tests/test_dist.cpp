/**
 * @file
 * Tests for the distributed work-claiming execution layer (src/dist/):
 * file-lock claims with lease expiry and stale takeover, the worker
 * daemon's scan→claim→run→record loop, per-worker store shards and
 * their deterministic merge/compaction, and the invariant the whole
 * layer exists to keep — any worker count, any kill schedule, same
 * final energies as a single-process JobScheduler run.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/file_util.h"
#include "dist/store_merge.h"
#include "dist/work_claim.h"
#include "dist/worker_daemon.h"
#include "svc/job_scheduler.h"
#include "svc/sweep_dir.h"

namespace treevqa {
namespace {

// ------------------------------------------------------------- helpers

std::filesystem::path
scratchDir(const std::string &name)
{
    const std::filesystem::path dir =
        std::filesystem::path(::testing::TempDir()) / ("dist_" + name);
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

/** A tiny, fast scenario (4-qubit TFIM, 1-layer HEA, SPSA). */
ScenarioSpec
tinySpec(const std::string &name, double field, int iterations = 12)
{
    ScenarioSpec spec;
    spec.name = name;
    spec.problem = "tfim";
    spec.size = 4;
    spec.field = field;
    spec.ansatz = "hea";
    spec.layers = 1;
    spec.engine.shotsPerTerm = 256;
    spec.maxIterations = iterations;
    spec.seed = 99;
    spec.checkpointInterval = 4;
    return spec;
}

std::vector<ScenarioSpec>
tinySweep(int jobs = 4)
{
    std::vector<ScenarioSpec> specs;
    for (int j = 0; j < jobs; ++j)
        specs.push_back(
            tinySpec("job" + std::to_string(j), 0.5 + 0.2 * j));
    return specs;
}

void
expectJobsBitIdentical(const JobResult &a, const JobResult &b)
{
    EXPECT_EQ(a.fingerprint, b.fingerprint);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.shotsUsed, b.shotsUsed);
    ASSERT_EQ(a.trajectory.size(), b.trajectory.size());
    for (std::size_t i = 0; i < a.trajectory.size(); ++i)
        EXPECT_EQ(a.trajectory[i], b.trajectory[i]) << "iteration " << i;
    EXPECT_EQ(a.bestLoss, b.bestLoss);
    ASSERT_EQ(a.bestParams.size(), b.bestParams.size());
    for (std::size_t i = 0; i < a.bestParams.size(); ++i)
        EXPECT_EQ(a.bestParams[i], b.bestParams[i]) << "param " << i;
    EXPECT_EQ(a.finalEnergy, b.finalEnergy);
}

/** Single-process reference run of the same sweep in its own dir. */
std::vector<JobResult>
referenceRun(const std::vector<ScenarioSpec> &specs,
             const std::string &name)
{
    SchedulerConfig config;
    config.outDir = scratchDir(name).string();
    return JobScheduler(config).run(specs).jobs;
}

// ------------------------------------------------------------ file util

TEST(FileUtil, ExclusiveCreateAdmitsExactlyOneWriter)
{
    const auto dir = scratchDir("excl");
    const std::string path = (dir / "token").string();
    EXPECT_TRUE(tryCreateExclusiveText(path, "first"));
    EXPECT_FALSE(tryCreateExclusiveText(path, "second"));
    std::string content;
    ASSERT_TRUE(readTextFile(path, content));
    EXPECT_EQ(content, "first");
}

TEST(FileUtil, AtomicWriteReplacesWholeFile)
{
    const auto dir = scratchDir("atomic");
    const std::string path = (dir / "f").string();
    writeTextFileAtomic(path, "one");
    writeTextFileAtomic(path, "two");
    std::string content;
    ASSERT_TRUE(readTextFile(path, content));
    EXPECT_EQ(content, "two");
    // No staging temp left behind.
    std::size_t entries = 0;
    for (const auto &entry : std::filesystem::directory_iterator(dir)) {
        (void)entry;
        ++entries;
    }
    EXPECT_EQ(entries, 1u);
}

TEST(FileUtil, SanitizeFileTokenStripsSeparators)
{
    EXPECT_EQ(sanitizeFileToken("host-1_a.B"), "host-1_a.B");
    EXPECT_EQ(sanitizeFileToken("../evil/../x"), ".._evil_.._x");
    EXPECT_EQ(sanitizeFileToken("a b:c"), "a_b_c");
}

// ----------------------------------------------------------- work claim

TEST(WorkClaim, AcquireIsExclusiveUntilReleased)
{
    const auto dir = scratchDir("claim_excl");
    auto first = WorkClaim::tryAcquire(dir.string(), "fp1", "alice",
                                       60000);
    ASSERT_TRUE(first.has_value());
    EXPECT_TRUE(first->held());
    EXPECT_EQ(first->info().owner, "alice");

    bool reaped = true;
    EXPECT_FALSE(WorkClaim::tryAcquire(dir.string(), "fp1", "bob",
                                       60000, &reaped)
                     .has_value());
    EXPECT_FALSE(reaped);
    // A different fingerprint is independent.
    EXPECT_TRUE(WorkClaim::tryAcquire(dir.string(), "fp2", "bob",
                                      60000)
                    .has_value());

    first->release();
    EXPECT_FALSE(first->held());
    EXPECT_TRUE(WorkClaim::tryAcquire(dir.string(), "fp1", "bob",
                                      60000)
                    .has_value());
}

TEST(WorkClaim, RenewExtendsTheDeadline)
{
    const auto dir = scratchDir("claim_renew");
    auto claim = WorkClaim::tryAcquire(dir.string(), "fp", "w", 60000);
    ASSERT_TRUE(claim.has_value());
    const std::int64_t before = claim->info().deadlineMs;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_TRUE(claim->renew());
    const auto peeked = WorkClaim::peek(dir.string(), "fp");
    ASSERT_TRUE(peeked.has_value());
    EXPECT_GT(peeked->deadlineMs, before);
    EXPECT_EQ(peeked->renewals, 1);
    EXPECT_EQ(peeked->owner, "w");
}

TEST(WorkClaim, StaleLeaseIsReapedAndLoserLearnsIt)
{
    const auto dir = scratchDir("claim_stale");
    auto dead = WorkClaim::tryAcquire(dir.string(), "fp", "crashed",
                                      20);
    ASSERT_TRUE(dead.has_value());
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

    bool reaped = false;
    auto taken = WorkClaim::tryAcquire(dir.string(), "fp", "survivor",
                                       60000, &reaped);
    ASSERT_TRUE(taken.has_value());
    EXPECT_TRUE(reaped);
    EXPECT_EQ(taken->info().owner, "survivor");

    // The original holder discovers the loss on its next heartbeat and
    // must not delete the new owner's lock on release.
    EXPECT_FALSE(dead->renew());
    dead->release();
    const auto peeked = WorkClaim::peek(dir.string(), "fp");
    ASSERT_TRUE(peeked.has_value());
    EXPECT_EQ(peeked->owner, "survivor");
}

TEST(WorkClaim, TornClaimFileIsReapable)
{
    const auto dir = scratchDir("claim_torn");
    const std::string path = WorkClaim::claimPath(dir.string(), "fp");
    {
        std::ofstream torn(path);
        torn << "{\"owner\": \"half-writ";
    }
    bool reaped = false;
    auto claim = WorkClaim::tryAcquire(dir.string(), "fp", "w", 60000,
                                       &reaped);
    ASSERT_TRUE(claim.has_value());
    EXPECT_TRUE(reaped);
}

TEST(WorkClaim, InfoJsonRoundTrips)
{
    ClaimInfo info;
    info.fingerprint = "abc123";
    info.owner = "host-42";
    info.acquiredMs = 1753660800000;
    info.deadlineMs = 1753660830000;
    info.leaseMs = 30000;
    info.renewals = 7;
    const ClaimInfo back =
        claimFromJson(JsonValue::parse(claimToJson(info).dump()));
    EXPECT_EQ(back.fingerprint, info.fingerprint);
    EXPECT_EQ(back.owner, info.owner);
    EXPECT_EQ(back.acquiredMs, info.acquiredMs);
    EXPECT_EQ(back.deadlineMs, info.deadlineMs);
    EXPECT_EQ(back.leaseMs, info.leaseMs);
    EXPECT_EQ(back.renewals, info.renewals);
}

TEST(WorkClaim, StalenessToleratesClockSkewBothWays)
{
    ClaimInfo info;
    info.leaseMs = 10000;
    info.deadlineMs = 1753660830000;
    const std::int64_t grace = 1000; // < leaseMs/2, used as-is

    // Reaper's clock behind the owner's: deadline still in the
    // reaper's future — never stale.
    EXPECT_FALSE(claimIsStale(info, info.deadlineMs - 5000, grace));
    // Reaper's clock ahead by less than the grace: not stale, the
    // owner may be alive and about to renew.
    EXPECT_FALSE(claimIsStale(info, info.deadlineMs + grace, grace));
    // Past the grace the lease is genuinely dead.
    EXPECT_TRUE(
        claimIsStale(info, info.deadlineMs + grace + 1, grace));

    // Short leases clamp the grace to leaseMs/2 so expiry tests (and
    // fast-reaping fleets) aren't swamped by the skew margin.
    ClaimInfo quick = info;
    quick.leaseMs = 20;
    EXPECT_FALSE(claimIsStale(quick, quick.deadlineMs + 10, grace));
    EXPECT_TRUE(claimIsStale(quick, quick.deadlineMs + 11, grace));
}

TEST(WorkClaim, ImplausiblyFutureDeadlineIsImmediatelyStale)
{
    // A deadline more than leaseMs + grace ahead of the reaper's
    // clock cannot have been written by any owner within the
    // tolerated skew — corrupt content or a runaway clock. It must
    // not pin the lock for an hour.
    ClaimInfo info;
    info.leaseMs = 1000;
    info.deadlineMs = 1753660830000;
    const std::int64_t grace = 400; // min(400, 500) = 400
    const std::int64_t now = info.deadlineMs - 3600000;
    EXPECT_TRUE(claimIsStale(info, now, grace));
    // Right at the plausibility bound it is a normal live lease.
    EXPECT_FALSE(claimIsStale(
        info, info.deadlineMs - info.leaseMs - grace, grace));
}

TEST(WorkClaim, ReaperAheadOfOwnerDoesNotStealLiveLease)
{
    const auto dir = scratchDir("claim_skew_ahead");
    // Simulate an owner whose clock runs ~1.5s behind ours: the
    // deadline it wrote is already past on our clock, but within the
    // skew grace for its 60s lease.
    ClaimInfo owner;
    owner.fingerprint = "fp";
    owner.owner = "slow-clock";
    owner.leaseMs = 60000;
    owner.acquiredMs = unixTimeMs() - 61500;
    owner.deadlineMs = unixTimeMs() - 1500;
    writeTextFileAtomic(WorkClaim::claimPath(dir.string(), "fp"),
                        claimToJson(owner).dump() + "\n");

    // Default grace (1000ms) — expired beyond it, reapable.
    bool reaped = false;
    EXPECT_TRUE(WorkClaim::tryAcquire(dir.string(), "fp", "us", 60000,
                                      &reaped)
                    .has_value());
    EXPECT_TRUE(reaped);

    // With a grace that covers the skew, the lease is respected.
    writeTextFileAtomic(WorkClaim::claimPath(dir.string(), "fp2"),
                        claimToJson(owner).dump() + "\n");
    EXPECT_FALSE(WorkClaim::tryAcquire(dir.string(), "fp2", "us",
                                       60000, &reaped,
                                       /*skewGraceMs=*/5000)
                     .has_value());
}

TEST(WorkClaim, OwnerAheadOfReaperCannotPinTheLockForever)
{
    const auto dir = scratchDir("claim_skew_behind");
    // An owner whose clock ran far ahead wrote a deadline an hour in
    // our future before dying; its 100ms lease says no honest renewal
    // chain can explain that. The lock must be reapable now.
    ClaimInfo owner;
    owner.fingerprint = "fp";
    owner.owner = "fast-clock";
    owner.leaseMs = 100;
    owner.acquiredMs = unixTimeMs();
    owner.deadlineMs = unixTimeMs() + 3600000;
    writeTextFileAtomic(WorkClaim::claimPath(dir.string(), "fp"),
                        claimToJson(owner).dump() + "\n");

    bool reaped = false;
    auto claim = WorkClaim::tryAcquire(dir.string(), "fp", "us", 60000,
                                       &reaped);
    ASSERT_TRUE(claim.has_value());
    EXPECT_TRUE(reaped);
}

TEST(WorkClaim, DoubleReapRaceAdmitsExactlyOneWinner)
{
    const auto dir = scratchDir("claim_double_reap");
    // Two contenders race to reap the same stale claim, repeatedly:
    // the rename protocol must admit exactly one per round, and the
    // loser must see a clean "not acquired", never a second lease.
    for (int round = 0; round < 25; ++round) {
        const std::string fp = "fp" + std::to_string(round);
        ClaimInfo dead;
        dead.fingerprint = fp;
        dead.owner = "crashed";
        dead.leaseMs = 20;
        dead.acquiredMs = unixTimeMs() - 1000;
        dead.deadlineMs = unixTimeMs() - 980;
        writeTextFileAtomic(WorkClaim::claimPath(dir.string(), fp),
                            claimToJson(dead).dump() + "\n");

        std::atomic<int> wins{0};
        std::atomic<int> reaps{0};
        const auto contender = [&](const std::string &owner) {
            bool reaped = false;
            auto claim = WorkClaim::tryAcquire(dir.string(), fp,
                                               owner, 60000, &reaped);
            if (claim.has_value()) {
                ++wins;
                if (reaped)
                    ++reaps;
            }
        };
        std::thread a(contender, "alice");
        std::thread b(contender, "bob");
        a.join();
        b.join();
        ASSERT_EQ(wins.load(), 1) << "round " << round;
        // Reap attribution is best-effort: the loser's rename may
        // clear the stale lock just before the winner's fresh O_EXCL
        // create, in which case the winner never saw the old claim.
        // What must never happen is two contenders both counting it.
        ASSERT_LE(reaps.load(), 1) << "round " << round;
        const auto peeked = WorkClaim::peek(dir.string(), fp);
        ASSERT_TRUE(peeked.has_value());
        EXPECT_TRUE(peeked->owner == "alice"
                    || peeked->owner == "bob");
    }
}

// -------------------------------------------------- store dedup + merge

TEST(ResultStoreDedupe, KeepsTheNewestCompleteRecord)
{
    JobResult stale;
    stale.spec = tinySpec("dup", 1.0);
    stale.fingerprint = "F";
    stale.completed = false;
    stale.iterations = 3;

    JobResult complete = stale;
    complete.completed = true;
    complete.iterations = 12;

    JobResult other;
    other.spec = tinySpec("other", 0.5);
    other.fingerprint = "G";
    other.completed = true;
    other.iterations = 12;

    // Incomplete-then-complete: the complete one wins.
    auto deduped = dedupeByFingerprint({stale, other, complete});
    ASSERT_EQ(deduped.size(), 2u);
    EXPECT_EQ(deduped[0].fingerprint, "F");
    EXPECT_TRUE(deduped[0].completed);
    EXPECT_EQ(deduped[1].fingerprint, "G");

    // Complete-then-incomplete: the complete one still wins.
    deduped = dedupeByFingerprint({complete, stale});
    ASSERT_EQ(deduped.size(), 1u);
    EXPECT_TRUE(deduped[0].completed);

    // Two complete duplicates: the later (newer) one wins.
    JobResult newer = complete;
    newer.iterations = 24;
    deduped = dedupeByFingerprint({complete, newer});
    ASSERT_EQ(deduped.size(), 1u);
    EXPECT_EQ(deduped[0].iterations, 24);
}

TEST(StoreMerge, FoldsShardsIntoTheCanonicalStore)
{
    const auto dir = scratchDir("merge");
    std::filesystem::create_directories(sweepShardDir(dir.string()));

    const JobResult a = runScenario(tinySpec("a", 0.7, 6));
    const JobResult b = runScenario(tinySpec("b", 1.1, 6));
    const JobResult c = runScenario(tinySpec("c", 1.5, 6));

    // Canonical holds a; two shards hold b, c, and a duplicate of a.
    ResultStore(sweepStorePath(dir.string())).append(a);
    ResultStore(sweepShardPath(dir.string(), "w1")).append(c);
    ResultStore(sweepShardPath(dir.string(), "w2")).append(b);
    ResultStore(sweepShardPath(dir.string(), "w2")).append(a);

    const std::vector<JobResult> merged =
        loadMergedRecords(dir.string());
    ASSERT_EQ(merged.size(), 3u);
    EXPECT_EQ(merged[0].spec.name, "a"); // name-sorted
    EXPECT_EQ(merged[1].spec.name, "b");
    EXPECT_EQ(merged[2].spec.name, "c");
    expectJobsBitIdentical(merged[0], a);
    expectJobsBitIdentical(merged[1], b);
    expectJobsBitIdentical(merged[2], c);

    // A merge over a possibly-live fleet folds shards but keeps them.
    const SweepMergeStats live = compactSweepStore(dir.string(), false);
    EXPECT_EQ(live.inputRecords, 4u);
    EXPECT_EQ(live.uniqueRecords, 3u);
    EXPECT_EQ(live.shardFiles, 2u);
    EXPECT_TRUE(std::filesystem::exists(
        sweepShardPath(dir.string(), "w1")));

    // The drained-sweep compaction retires the shards.
    const SweepMergeStats stats = compactSweepStore(dir.string(), true);
    EXPECT_EQ(stats.uniqueRecords, 3u);
    EXPECT_FALSE(std::filesystem::exists(
        sweepShardPath(dir.string(), "w1")));
    EXPECT_FALSE(std::filesystem::exists(
        sweepShardPath(dir.string(), "w2")));

    // The compacted canonical store round-trips and the summary is on
    // disk; a second compaction is a byte-identical no-op.
    std::string store_once, summary_once;
    ASSERT_TRUE(readTextFile(sweepStorePath(dir.string()), store_once));
    ASSERT_TRUE(
        readTextFile(sweepSummaryPath(dir.string()), summary_once));
    compactSweepStore(dir.string(), true);
    std::string store_twice, summary_twice;
    ASSERT_TRUE(
        readTextFile(sweepStorePath(dir.string()), store_twice));
    ASSERT_TRUE(
        readTextFile(sweepSummaryPath(dir.string()), summary_twice));
    EXPECT_EQ(store_once, store_twice);
    EXPECT_EQ(summary_once, summary_twice);
    EXPECT_EQ(summary_once,
              sweepSummaryJson(merged).dump(2) + "\n");
}

// -------------------------------------------------------- worker daemon

TEST(WorkerDaemon, SingleWorkerDrainsMatchingTheScheduler)
{
    const auto dir = scratchDir("one_worker");
    const std::vector<ScenarioSpec> specs = tinySweep(4);
    const std::vector<JobResult> reference =
        referenceRun(specs, "one_worker_ref");

    WorkerOptions options;
    options.sweepDir = dir.string();
    options.workerId = "w1";
    options.leaseMs = 60000;
    const WorkerReport report = WorkerDaemon(options).run(specs);

    EXPECT_EQ(report.completed, 4u);
    EXPECT_EQ(report.lostClaims, 0u);
    EXPECT_EQ(report.reapedLeases, 0u);
    EXPECT_TRUE(report.drained);
    EXPECT_TRUE(report.merged);

    const std::vector<JobResult> merged =
        loadMergedRecords(dir.string());
    ASSERT_EQ(merged.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i)
        expectJobsBitIdentical(merged[i], reference[i]);
    // The deterministic summary agrees byte for byte.
    std::string summary;
    ASSERT_TRUE(readTextFile(sweepSummaryPath(dir.string()), summary));
    EXPECT_EQ(summary, sweepSummaryJson(reference).dump(2) + "\n");
    // No claims left behind.
    for (std::size_t i = 0; i < specs.size(); ++i)
        EXPECT_FALSE(
            WorkClaim::peek(sweepClaimDir(dir.string()),
                            scenarioFingerprint(specs[i]))
                .has_value());
}

TEST(WorkerDaemon, TwoConcurrentWorkersShareOneSweep)
{
    const auto dir = scratchDir("two_workers");
    const std::vector<ScenarioSpec> specs = tinySweep(6);
    const std::vector<JobResult> reference =
        referenceRun(specs, "two_workers_ref");

    const auto make_options = [&](const char *id) {
        WorkerOptions options;
        options.sweepDir = dir.string();
        options.workerId = id;
        options.leaseMs = 60000; // never expires within the test
        options.pollMs = 5;
        return options;
    };
    WorkerDaemon wa(make_options("wa"));
    WorkerDaemon wb(make_options("wb"));
    WorkerReport ra, rb;
    std::thread ta([&] { ra = wa.run(specs); });
    std::thread tb([&] { rb = wb.run(specs); });
    ta.join();
    tb.join();

    // Every job ran exactly once across the fleet (no lease expired,
    // so no double work), and both workers saw the sweep drained.
    EXPECT_EQ(ra.completed + rb.completed, specs.size());
    EXPECT_EQ(ra.lostClaims + rb.lostClaims, 0u);
    EXPECT_TRUE(ra.drained);
    EXPECT_TRUE(rb.drained);

    const std::vector<JobResult> merged =
        loadMergedRecords(dir.string());
    ASSERT_EQ(merged.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i)
        expectJobsBitIdentical(merged[i], reference[i]);
    std::string summary;
    ASSERT_TRUE(readTextFile(sweepSummaryPath(dir.string()), summary));
    EXPECT_EQ(summary, sweepSummaryJson(reference).dump(2) + "\n");
}

TEST(WorkerDaemon, CrashedWorkersJobIsReclaimedFromItsCheckpoint)
{
    const auto dir = scratchDir("takeover");
    const std::vector<ScenarioSpec> specs = tinySweep(3);
    const std::vector<JobResult> reference =
        referenceRun(specs, "takeover_ref");

    // Worker A "crashes" mid-job: the halt hook stops its first job
    // after 6 iterations (durable checkpoint at 4) and the daemon
    // returns without releasing the claim — the exact on-disk state a
    // SIGKILL leaves behind.
    WorkerOptions crash_options;
    crash_options.sweepDir = dir.string();
    crash_options.workerId = "crasher";
    crash_options.leaseMs = 200;
    // One claim at a time so exactly one (the crashed job's) is left;
    // BatchedClaimCrashAbandonsTheWholeBatch covers claimBatch > 1.
    crash_options.claimBatch = 1;
    crash_options.haltJobsAfterIterations = 6;
    const WorkerReport crashed =
        WorkerDaemon(crash_options).run(specs);
    EXPECT_TRUE(crashed.simulatedCrash);
    EXPECT_EQ(crashed.completed, 0u);

    // Exactly one claim (the crashed job's) and its checkpoint remain.
    std::size_t leftover_claims = 0;
    std::string crashed_fp;
    for (const ScenarioSpec &spec : specs) {
        const std::string fp = scenarioFingerprint(spec);
        if (WorkClaim::peek(sweepClaimDir(dir.string()), fp)) {
            ++leftover_claims;
            crashed_fp = fp;
        }
    }
    ASSERT_EQ(leftover_claims, 1u);
    const auto peeked =
        peekCheckpoint(sweepCheckpointPath(dir.string(), crashed_fp));
    ASSERT_TRUE(peeked.has_value());
    EXPECT_EQ(peeked->fingerprint, crashed_fp);
    EXPECT_EQ(peeked->iteration, 4);

    // The survivor waits out the stale lease, reaps it, resumes the
    // job from the checkpoint, and drains the rest of the sweep.
    WorkerOptions survivor_options;
    survivor_options.sweepDir = dir.string();
    survivor_options.workerId = "survivor";
    survivor_options.leaseMs = 60000;
    survivor_options.pollMs = 10;
    const WorkerReport survived =
        WorkerDaemon(survivor_options).run(specs);
    EXPECT_EQ(survived.completed, specs.size());
    EXPECT_GE(survived.reapedLeases, 1u);
    EXPECT_GE(survived.resumed, 1u);
    EXPECT_TRUE(survived.drained);
    EXPECT_TRUE(survived.merged);

    // The kill schedule is invisible in the results: bit-identical to
    // the uninterrupted single-process run, including the job that
    // crossed two workers.
    const std::vector<JobResult> merged =
        loadMergedRecords(dir.string());
    ASSERT_EQ(merged.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i)
        expectJobsBitIdentical(merged[i], reference[i]);
    std::string summary;
    ASSERT_TRUE(readTextFile(sweepSummaryPath(dir.string()), summary));
    EXPECT_EQ(summary, sweepSummaryJson(reference).dump(2) + "\n");
}

TEST(WorkerDaemon, SkipsJobsAlreadyRecordedAndStopsAtMaxJobs)
{
    const auto dir = scratchDir("skip");
    const std::vector<ScenarioSpec> specs = tinySweep(4);

    WorkerOptions options;
    options.sweepDir = dir.string();
    options.workerId = "first";
    options.leaseMs = 60000;
    options.maxJobs = 1;
    options.mergeOnDrain = false;
    const WorkerReport first = WorkerDaemon(options).run(specs);
    EXPECT_EQ(first.completed, 1u);
    EXPECT_FALSE(first.drained);

    options.workerId = "second";
    options.maxJobs = 0;
    const WorkerReport second = WorkerDaemon(options).run(specs);
    EXPECT_EQ(second.completed, specs.size() - 1);
    EXPECT_TRUE(second.drained);

    // A third worker finds nothing to do.
    options.workerId = "third";
    const WorkerReport third = WorkerDaemon(options).run(specs);
    EXPECT_EQ(third.completed, 0u);
    EXPECT_TRUE(third.drained);
}

TEST(WorkerDaemon, RejectsBadOptionsAndDuplicateSpecs)
{
    WorkerOptions no_dir;
    EXPECT_THROW(WorkerDaemon{no_dir}, std::invalid_argument);

    WorkerOptions bad_id;
    bad_id.sweepDir = scratchDir("bad_id").string();
    bad_id.workerId = "no/slashes allowed";
    EXPECT_THROW(WorkerDaemon{bad_id}, std::invalid_argument);

    WorkerOptions options;
    options.sweepDir = scratchDir("dup_specs").string();
    options.workerId = "w";
    const std::vector<ScenarioSpec> dupes = {tinySpec("same", 1.0),
                                             tinySpec("same", 1.0)};
    EXPECT_THROW(WorkerDaemon(options).run(dupes),
                 std::invalid_argument);
}

TEST(WorkerDaemon, LoadsSweepSpecsFromTheSharedDirectory)
{
    const auto dir = scratchDir("spec_file");
    EXPECT_THROW(WorkerDaemon::loadSweepSpecs(dir.string()),
                 std::runtime_error);
    writeTextFileAtomic(
        sweepSpecPath(dir.string()),
        R"({"name": "s", "problem": "tfim", "size": 4,
            "sweep": {"field": [0.5, 1.0]}})");
    const std::vector<ScenarioSpec> specs =
        WorkerDaemon::loadSweepSpecs(dir.string());
    ASSERT_EQ(specs.size(), 2u);
    EXPECT_EQ(specs[0].name, "s/field=0.5");
}

// ---------------------------------------------- fleet robustness layer

TEST(WorkClaim, RenewStampsMonotonicProgressIntoTheClaim)
{
    const auto dir = scratchDir("progress");
    auto claim = WorkClaim::tryAcquire(dir.string(), "FP", "w", 60000);
    ASSERT_TRUE(claim.has_value());
    EXPECT_EQ(claim->info().progress, -1);

    ASSERT_TRUE(claim->renew(3));
    auto peeked = WorkClaim::peek(dir.string(), "FP");
    ASSERT_TRUE(peeked.has_value());
    EXPECT_EQ(peeked->progress, 3);

    // A renewal without a progress value keeps the previous stamp —
    // the watchdog distinguishes "lease alive, job frozen" from
    // "lease alive, job advancing".
    ASSERT_TRUE(claim->renew());
    peeked = WorkClaim::peek(dir.string(), "FP");
    ASSERT_TRUE(peeked.has_value());
    EXPECT_EQ(peeked->progress, 3);

    ASSERT_TRUE(claim->renew(7));
    peeked = WorkClaim::peek(dir.string(), "FP");
    ASSERT_TRUE(peeked.has_value());
    EXPECT_EQ(peeked->progress, 7);

    // And the stamp round-trips through the JSON claim format.
    const ClaimInfo back = claimFromJson(claimToJson(*peeked));
    EXPECT_EQ(back.progress, 7);
    claim->release();
}

TEST(WorkerDaemon, JitteredPollIsDeterministicAndBounded)
{
    // Same identity, same jitter — poll cadence must never introduce
    // run-to-run nondeterminism.
    EXPECT_EQ(jitteredPollMs(200, "w0"), jitteredPollMs(200, "w0"));
    // Distinct identities land in [0.75, 1.25] * pollMs, never below
    // 1 ms, and actually spread (not all on one value).
    std::set<std::int64_t> seen;
    for (int k = 0; k < 16; ++k) {
        const std::int64_t ms =
            jitteredPollMs(200, "worker-" + std::to_string(k));
        EXPECT_GE(ms, 150);
        EXPECT_LE(ms, 250);
        seen.insert(ms);
    }
    EXPECT_GT(seen.size(), 4u);
    EXPECT_GE(jitteredPollMs(1, "w"), 1);
}

TEST(ResultStoreDedupe, AccumulatesFailedAttemptsAcrossRecords)
{
    JobResult one;
    one.spec = tinySpec("poison", 1.0);
    one.fingerprint = "F";
    one.failed = true;
    one.attempts = 1;
    one.timedOut = true;

    JobResult two = one;
    two.attempts = 2;
    two.timedOut = false;

    // Two failure records of the same job from different workers: the
    // fleet-wide budget sees their *sum*, and timedOut is sticky.
    auto deduped = dedupeByFingerprint({one, two});
    ASSERT_EQ(deduped.size(), 1u);
    EXPECT_TRUE(deduped[0].failed);
    EXPECT_EQ(deduped[0].attempts, 3);
    EXPECT_TRUE(deduped[0].timedOut);

    // A legacy budget-exhausted record (attempts == 0) dominates: the
    // sum is unknowable, so the merged record stays "exhausted".
    JobResult legacy = one;
    legacy.attempts = 0;
    legacy.timedOut = false;
    deduped = dedupeByFingerprint({one, legacy});
    ASSERT_EQ(deduped.size(), 1u);
    EXPECT_EQ(deduped[0].attempts, 0);
    EXPECT_TRUE(deduped[0].timedOut);

    // A completed record supersedes the failure history outright.
    JobResult done;
    done.spec = one.spec;
    done.fingerprint = "F";
    done.completed = true;
    deduped = dedupeByFingerprint({one, done, two});
    ASSERT_EQ(deduped.size(), 1u);
    EXPECT_TRUE(deduped[0].completed);
    EXPECT_FALSE(deduped[0].failed);
}

TEST(WorkerDaemon, ResolvedFingerprintsHonorTheFleetBudget)
{
    JobResult done;
    done.fingerprint = "DONE";
    done.completed = true;

    JobResult partial;
    partial.fingerprint = "PARTIAL";
    partial.failed = true;
    partial.attempts = 2;

    JobResult legacy;
    legacy.fingerprint = "LEGACY";
    legacy.failed = true;
    legacy.attempts = 0;

    const std::vector<JobResult> records = {done, partial, legacy};
    // Budget 3: two recorded attempts leave one to spend — the job is
    // still pending fleet-wide. Legacy failed records read as
    // exhausted whatever the budget.
    auto resolved = resolvedFingerprints(records, 3);
    EXPECT_EQ(resolved.count("DONE"), 1u);
    EXPECT_EQ(resolved.count("PARTIAL"), 0u);
    EXPECT_EQ(resolved.count("LEGACY"), 1u);
    // Budget 2: the partial failure is now spent too.
    resolved = resolvedFingerprints(records, 2);
    EXPECT_EQ(resolved.count("PARTIAL"), 1u);

    EXPECT_EQ(priorFailedAttempts(records, "PARTIAL", 3), 2);
    EXPECT_EQ(priorFailedAttempts(records, "LEGACY", 3), 3);
    EXPECT_EQ(priorFailedAttempts(records, "DONE", 3), 0);
    EXPECT_EQ(priorFailedAttempts(records, "ABSENT", 3), 0);
}

TEST(WorkerDaemon, PoisonBudgetIsFleetWideAcrossWorkers)
{
    const auto dir = scratchDir("fleet_budget");
    const std::vector<ScenarioSpec> specs = tinySweep(2);
    const std::vector<JobResult> reference =
        referenceRun(specs, "fleet_budget_ref");

    // Worker A: every attempt throws; budget 2 → both jobs poisoned
    // with attempt-carrying records.
    FaultInjection::instance().arm(
        R"({"seed": 1, "faults": [{"site": "worker.job",
            "action": "fail-errno", "errno": "EIO",
            "hit": 1, "times": 0}]})");
    WorkerOptions options;
    options.sweepDir = dir.string();
    options.workerId = "wa";
    options.leaseMs = 60000;
    options.maxJobAttempts = 2;
    options.retryBackoffMs = 1;
    options.mergeOnDrain = false;
    const WorkerReport poisoner = WorkerDaemon(options).run(specs);
    FaultInjection::instance().disarm();
    EXPECT_EQ(poisoner.poisoned, specs.size());
    EXPECT_EQ(poisoner.completed, 0u);
    EXPECT_TRUE(poisoner.drained); // degraded: all jobs resolved-failed

    // Worker B, same budget: the fleet already spent it — nothing to
    // do, no extra attempts, even though B itself never failed once.
    options.workerId = "wb";
    const WorkerReport skipper = WorkerDaemon(options).run(specs);
    EXPECT_EQ(skipper.completed, 0u);
    EXPECT_EQ(skipper.failedAttempts, 0u);
    EXPECT_EQ(skipper.poisoned, 0u);
    EXPECT_TRUE(skipper.drained);
    for (const JobResult &record : loadMergedRecords(dir.string())) {
        EXPECT_TRUE(record.failed);
        EXPECT_EQ(record.attempts, 2);
    }

    // Worker C with a larger budget sees the jobs as unresolved again
    // (2 of 5 attempts spent), re-runs them fault-free, and the
    // completed records supersede the failure history bit-identically.
    options.workerId = "wc";
    options.maxJobAttempts = 5;
    options.mergeOnDrain = true;
    const WorkerReport healer = WorkerDaemon(options).run(specs);
    EXPECT_EQ(healer.completed, specs.size());
    EXPECT_TRUE(healer.drained);
    const std::vector<JobResult> merged =
        loadMergedRecords(dir.string());
    ASSERT_EQ(merged.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i)
        expectJobsBitIdentical(merged[i], reference[i]);
}

TEST(WorkerDaemon, BatchedClaimCrashAbandonsTheWholeBatch)
{
    const auto dir = scratchDir("batch_crash");
    const std::vector<ScenarioSpec> specs = tinySweep(4);
    const std::vector<JobResult> reference =
        referenceRun(specs, "batch_crash_ref");

    // Worker A leases the whole sweep in one batch pass, then
    // "crashes" on its first job: every claim in the batch — the
    // running job's and the three queued ones — must be left on disk
    // exactly as a SIGKILL would leave them.
    WorkerOptions crash_options;
    crash_options.sweepDir = dir.string();
    crash_options.workerId = "crasher";
    crash_options.leaseMs = 200;
    crash_options.claimBatch = 8;
    crash_options.haltJobsAfterIterations = 6;
    const WorkerReport crashed =
        WorkerDaemon(crash_options).run(specs);
    EXPECT_TRUE(crashed.simulatedCrash);
    EXPECT_EQ(crashed.completed, 0u);
    for (const ScenarioSpec &spec : specs)
        EXPECT_TRUE(WorkClaim::peek(sweepClaimDir(dir.string()),
                                    scenarioFingerprint(spec))
                        .has_value())
            << spec.name;

    // A survivor reaps all four stale leases once they expire and
    // drains the sweep — the abandoned batch cost nothing but time.
    WorkerOptions survivor_options;
    survivor_options.sweepDir = dir.string();
    survivor_options.workerId = "survivor";
    survivor_options.leaseMs = 60000;
    survivor_options.pollMs = 10;
    const WorkerReport survived =
        WorkerDaemon(survivor_options).run(specs);
    EXPECT_EQ(survived.completed, specs.size());
    EXPECT_GE(survived.reapedLeases, specs.size());
    EXPECT_GE(survived.resumed, 1u);
    EXPECT_TRUE(survived.drained);

    const std::vector<JobResult> merged =
        loadMergedRecords(dir.string());
    ASSERT_EQ(merged.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i)
        expectJobsBitIdentical(merged[i], reference[i]);
    std::string summary;
    ASSERT_TRUE(readTextFile(sweepSummaryPath(dir.string()), summary));
    EXPECT_EQ(summary, sweepSummaryJson(reference).dump(2) + "\n");
}

TEST(WorkerDaemon, BatchedRollingWorkersStayBitIdentical)
{
    // The full PR-8 claim path at once: two concurrent workers,
    // batched leasing, shard rolling at a tiny threshold (every
    // record triggers a roll) and fanout-2 tier folding — the final
    // compacted store and summary must still be byte-identical to the
    // single-process reference, like every other schedule.
    const auto dir = scratchDir("batch_roll");
    const std::vector<ScenarioSpec> specs = tinySweep(6);
    const std::vector<JobResult> reference =
        referenceRun(specs, "batch_roll_ref");

    const auto make_options = [&](const char *id) {
        WorkerOptions options;
        options.sweepDir = dir.string();
        options.workerId = id;
        options.leaseMs = 60000;
        options.pollMs = 5;
        options.claimBatch = 3;
        options.shardRollBytes = 1; // roll after every append
        options.tierFanout = 2;
        return options;
    };
    WorkerDaemon wa(make_options("wa"));
    WorkerDaemon wb(make_options("wb"));
    WorkerReport ra, rb;
    std::thread ta([&] { ra = wa.run(specs); });
    std::thread tb([&] { rb = wb.run(specs); });
    ta.join();
    tb.join();

    EXPECT_EQ(ra.completed + rb.completed, specs.size());
    EXPECT_EQ(ra.lostClaims + rb.lostClaims, 0u);
    EXPECT_GE(ra.shardRolls + rb.shardRolls, specs.size());
    EXPECT_TRUE(ra.drained);
    EXPECT_TRUE(rb.drained);

    const std::vector<JobResult> merged =
        loadMergedRecords(dir.string());
    ASSERT_EQ(merged.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i)
        expectJobsBitIdentical(merged[i], reference[i]);
    std::string summary;
    ASSERT_TRUE(readTextFile(sweepSummaryPath(dir.string()), summary));
    EXPECT_EQ(summary, sweepSummaryJson(reference).dump(2) + "\n");
    // Compaction retired every tier and shard.
    std::error_code ec;
    std::size_t leftovers = 0;
    for (const auto *sub : {"tiers", "workers"}) {
        for (const auto &entry : std::filesystem::directory_iterator(
                 dir / sub, ec)) {
            (void)entry;
            ++leftovers;
        }
    }
    EXPECT_EQ(leftovers, 0u);
}

TEST(WorkerDaemon, RescanBaselineReadsMoreThanIncrementalScan)
{
    // The claim-path optimization, asserted end to end: draining the
    // same sweep with the incremental tail reader must read far fewer
    // store bytes than the full-rescan baseline, and reach the same
    // records.
    const std::vector<ScenarioSpec> specs = tinySweep(4);
    const auto run_mode = [&](const char *name, bool incremental) {
        const auto dir = scratchDir(name);
        WorkerOptions options;
        options.sweepDir = dir.string();
        options.workerId = "w";
        options.leaseMs = 60000;
        options.claimBatch = 1; // one scan per job: worst case
        options.incrementalScan = incremental;
        options.mergeOnDrain = false;
        const WorkerReport report = WorkerDaemon(options).run(specs);
        EXPECT_EQ(report.completed, specs.size());
        EXPECT_EQ(loadMergedRecords(dir.string()).size(),
                  specs.size());
        return report;
    };
    const WorkerReport incremental = run_mode("scan_incr", true);
    const WorkerReport rescan = run_mode("scan_full", false);
    EXPECT_LT(incremental.storeBytesRead, rescan.storeBytesRead);
    // Amortized claim traffic: no more than a few acquire round-trips
    // per drained job even at batch size 1.
    EXPECT_LE(incremental.claimAttempts, specs.size() * 3);
}

TEST(WorkerDaemon, GracefulStopSealsCheckpointAndResumesBitIdentical)
{
    const auto dir = scratchDir("graceful");
    const std::vector<ScenarioSpec> specs = {tinySpec("seal", 1.3)};
    const std::vector<JobResult> reference =
        referenceRun(specs, "graceful_ref");

    // Stop is requested from inside the first durable checkpoint
    // write (iteration 4 of 12) — the moment a SIGTERM handler would
    // flip the same flag. The runner must seal a checkpoint at the
    // current iteration, release the claim, and record nothing.
    WorkerDaemon *running = nullptr;
    WorkerOptions options;
    options.sweepDir = dir.string();
    options.workerId = "stopped";
    options.leaseMs = 60000;
    options.onCheckpoint = [&running] {
        if (running != nullptr)
            running->requestStop();
    };
    WorkerDaemon daemon(options);
    running = &daemon;
    const WorkerReport report = daemon.run(specs);
    EXPECT_EQ(report.interrupted, 1u);
    EXPECT_EQ(report.completed, 0u);
    EXPECT_FALSE(report.drained);

    const std::string fp = scenarioFingerprint(specs[0]);
    EXPECT_FALSE(
        WorkClaim::peek(sweepClaimDir(dir.string()), fp).has_value());
    EXPECT_TRUE(loadMergedRecords(dir.string()).empty());
    const auto sealed =
        peekCheckpoint(sweepCheckpointPath(dir.string(), fp));
    ASSERT_TRUE(sealed.has_value());
    EXPECT_GE(sealed->iteration, 4);
    EXPECT_LT(sealed->iteration, specs[0].maxIterations);

    // The next claimant resumes from the sealed checkpoint and the
    // interruption is invisible in the results.
    options.workerId = "resumer";
    options.onCheckpoint = nullptr;
    const WorkerReport resumed = WorkerDaemon(options).run(specs);
    EXPECT_EQ(resumed.completed, 1u);
    EXPECT_GE(resumed.resumed, 1u);
    EXPECT_TRUE(resumed.drained);
    const std::vector<JobResult> merged =
        loadMergedRecords(dir.string());
    ASSERT_EQ(merged.size(), 1u);
    expectJobsBitIdentical(merged[0], reference[0]);
}

} // namespace
} // namespace treevqa
